//! Ahead-of-time artifact builder (DESIGN.md §11.4).
//!
//! Pre-assembles, verifies, and stores every program in the workspace
//! compiler corpus into a durable [`udp_store::ArtifactStore`], so a
//! serve runtime (or a later CI stage) can load certified images
//! without re-running the assembler or the verifier.
//!
//! ```text
//! aot [--dir PATH] [--check] [--json]
//! ```
//!
//! Without flags it populates the store (default `results/aot-store`)
//! and reports one line per program. With `--check` it demands that
//! every corpus program is *already* stored — each load must be a
//! cache `Hit` whose serialized image is byte-identical to a fresh
//! assemble-and-verify of the same source — and exits nonzero
//! otherwise. `scripts/ci.sh` runs a populate-then-check round trip as
//! the store gate. `--json` writes one JSON object per program to
//! `results/BENCH_aot.json`.

use std::fmt::Write as _;
use udp_asm::LayoutOptions;
use udp_isa::NUM_BANKS;
use udp_store::{ArtifactStore, LoadOutcome};

struct Row {
    name: String,
    outcome: &'static str,
    words: usize,
    banks: usize,
    certified: bool,
}

/// Finds the smallest power-of-two bank window the program assembles
/// into *through the store*, mirroring `assemble_smallest`. Returns
/// the artifact and the layout that produced it.
fn store_smallest(
    store: &ArtifactStore,
    source: &str,
) -> Result<(udp_store::Artifact, LayoutOptions), udp_store::StoreError> {
    let mut banks = 1;
    loop {
        let layout = LayoutOptions::with_banks(banks);
        match store.get_or_build(source, &layout) {
            Ok(a) => return Ok((a, layout)),
            Err(_) if banks < NUM_BANKS => banks *= 2,
            Err(e) => return Err(e),
        }
    }
}

fn main() {
    let mut dir = String::from("results/aot-store");
    let mut check = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--dir" => {
                dir = args.next().unwrap_or_else(|| {
                    eprintln!("--dir needs a path");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!("usage: aot [--dir PATH] [--check] [--json]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let store = match ArtifactStore::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("FAIL: could not open store at {dir}: {e}");
            std::process::exit(1);
        }
    };
    let corpus = udp_compilers::corpus::corpus();
    let total = corpus.len();
    let mut rows: Vec<Row> = Vec::new();
    let mut failures = 0usize;
    for (name, pb) in &corpus {
        let source = udp_asm::emit_asm(pb);
        match store_smallest(&store, &source) {
            Ok((artifact, layout)) => {
                let outcome = artifact.outcome.name();
                if check {
                    // The gate: a previous populate pass must make this
                    // a pure cache hit...
                    if !matches!(artifact.outcome, LoadOutcome::Hit) {
                        eprintln!("FAIL: {name}: expected a cache hit, store says {outcome}");
                        failures += 1;
                    }
                    // ...and the stored image must be byte-identical to
                    // a fresh parse-and-assemble of the same source
                    // text — the store's own build path (certificates
                    // stripped for the comparison — the store's
                    // revalidation rung already proved the stored cert
                    // matches a recomputed one).
                    let fresh = udp_asm::parse_asm(&source)
                        .map_err(|e| format!("{e:?}"))
                        .and_then(|pb| pb.assemble(&layout).map_err(|e| format!("{e:?}")));
                    match fresh {
                        Ok(fresh) => {
                            let mut stored = (*artifact.image).clone();
                            stored.cert = None;
                            let mut fresh = fresh;
                            fresh.cert = None;
                            if udp_asm::encode_image(&fresh) != udp_asm::encode_image(&stored) {
                                eprintln!(
                                    "FAIL: {name}: stored image diverges from a fresh assemble"
                                );
                                failures += 1;
                            }
                        }
                        Err(e) => {
                            eprintln!("FAIL: {name}: fresh assemble failed: {e}");
                            failures += 1;
                        }
                    }
                }
                rows.push(Row {
                    name: name.clone(),
                    outcome,
                    words: artifact.image.words.len(),
                    banks: artifact.banks_per_lane,
                    certified: artifact.image.cert.is_some(),
                });
            }
            Err(e) => {
                eprintln!("FAIL: {name}: {e}");
                failures += 1;
            }
        }
    }

    for r in &rows {
        println!(
            "aot name={} outcome={} words={} banks={} certified={}",
            r.name, r.outcome, r.words, r.banks, r.certified
        );
    }
    println!(
        "aot dir={dir} programs={total} stored={} failures={failures}",
        rows.len()
    );
    if json {
        let mut payload = String::new();
        for r in &rows {
            let _ = writeln!(
                payload,
                "{{\"name\":\"{}\",\"outcome\":\"{}\",\"words\":{},\"banks\":{},\"certified\":{}}}",
                r.name, r.outcome, r.words, r.banks, r.certified
            );
        }
        let path = "results/BENCH_aot.json";
        if let Err(e) =
            std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &payload))
        {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("json: {path}");
        }
    }
    if failures > 0 {
        eprintln!("FAIL: {failures} of {total} corpus programs did not round-trip the store");
        std::process::exit(1);
    }
    println!(
        "ok: all {total} corpus programs {} the artifact store",
        if check { "round-tripped" } else { "populated" }
    );
}

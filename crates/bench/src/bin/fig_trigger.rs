//! Section 5.7: Signal triggering (one UDP lane vs one CPU thread; full device vs 8 threads).

fn main() {
    let rows = udp_bench::suite::trigger();
    udp_bench::print_comparison_table("Section 5.7: Signal triggering", &rows);
}

//! Figures 21 and 22: overall UDP speedup vs 8 CPU threads and overall
//! throughput-per-watt vs CPU, across every workload kernel.

use udp_bench::{geomean, suite, Comparison};

fn main() {
    let all = suite::run_all();
    println!("== Figure 21 / Figure 22: overall speedup and performance/watt ==");
    println!(
        "{:<24} {:>14} {:>16}",
        "workload", "speedup vs 8t", "perf/W vs CPU"
    );
    let mut speedups = Vec::new();
    let mut perfwatts = Vec::new();
    for (name, rows) in &all {
        let sp = geomean(
            &rows
                .iter()
                .map(Comparison::device_speedup)
                .collect::<Vec<_>>(),
        );
        let pw = geomean(
            &rows
                .iter()
                .map(Comparison::perf_per_watt_ratio)
                .collect::<Vec<_>>(),
        );
        println!("{name:<24} {sp:>14.1} {pw:>16.0}");
        speedups.push(sp);
        perfwatts.push(pw);
    }
    println!(
        "{:<24} {:>14.1} {:>16.0}",
        "GEOMEAN",
        geomean(&speedups),
        geomean(&perfwatts)
    );
    println!("\npaper: 20x geomean speedup (range 8-197x), 1,900x geomean perf/W (276-18,300x)");
}

//! Table 3: UDP power and area breakdown (28nm model).

use udp_sim::energy::{AreaModel, LANE_COMPONENTS, SYSTEM_COMPONENTS, X86_CORE};

fn main() {
    println!("== Table 3: UDP power and area breakdown ==");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "component", "mW", "%", "mm^2", "%"
    );
    let lane_mw = AreaModel::lane_mw();
    let lane_mm2 = AreaModel::lane_mm2();
    for c in LANE_COMPONENTS {
        println!(
            "{:<22} {:>10.2} {:>9.1}% {:>10.3} {:>9.1}%",
            c.name,
            c.power_mw,
            c.power_mw / lane_mw * 100.0,
            c.area_mm2,
            c.area_mm2 / lane_mm2 * 100.0
        );
    }
    println!(
        "{:<22} {:>10.2} {:>10} {:>10.3}",
        "UDP Lane", lane_mw, "100%", lane_mm2
    );
    println!();
    let sys_mw = AreaModel::system_mw();
    let sys_mm2 = AreaModel::system_mm2();
    for c in SYSTEM_COMPONENTS {
        println!(
            "{:<22} {:>10.2} {:>9.1}% {:>10.3} {:>9.1}%",
            c.name,
            c.power_mw,
            c.power_mw / sys_mw * 100.0,
            c.area_mm2,
            c.area_mm2 / sys_mm2 * 100.0
        );
    }
    println!(
        "{:<22} {:>10.2} {:>10} {:>10.3}",
        "UDP System", sys_mw, "100%", sys_mm2
    );
    println!(
        "\n{:<22} {:>10.0} {:>10} {:>10.1}  ({}x power, {:.1}x area vs UDP system)",
        X86_CORE.name,
        X86_CORE.power_mw,
        "",
        X86_CORE.area_mm2,
        (X86_CORE.power_mw / sys_mw).round(),
        X86_CORE.area_mm2 / sys_mm2
    );
}

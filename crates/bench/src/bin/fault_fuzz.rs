//! Seeded fault-injection fuzzer (DESIGN.md §8).
//!
//! Replays a deterministic [`udp_fault::FaultPlan`] against the full
//! stack — corrupted program images through `Lane` and `Udp` waves,
//! damaged Snappy streams and dirty CSV/JSON through the codecs and
//! the recovering ETL pipeline, hostile run configs, and chaos lane
//! panics — and checks the one invariant: every run terminates within
//! its cycle budget and reports a typed error or `LaneStatus::Fault`,
//! never a panic and never a hang.
//!
//! ```text
//! fault_fuzz [--iters N] [--seed 0xHEX|N] [--min-static-reject N]
//!            [--min-recovery-rate PCT] [--store-iters N] [--json]
//! ```
//!
//! Prints a machine-readable `key=value` summary and exits nonzero if
//! any case panicked — or, with `--min-static-reject N`, if the
//! `udp-verify` oracle rejected fewer than `N` corrupted images before
//! execution (the usefulness invariant from DESIGN.md §9) — or, with
//! `--min-recovery-rate PCT`, if fewer than `PCT`% of the transient
//! chaos mode's injected faults resolved as Recovered or Fallback on
//! the supervisor's ladder (DESIGN.md §8). `--json` additionally
//! writes one JSON object per mode to `results/BENCH_fault_fuzz.json`
//! (mirroring hostperf's `--json`) so the robustness trajectory is
//! tracked across PRs like perf is. With `--store-iters N` it also
//! runs N artifact-store corruption cases (bit flips, truncations,
//! torn writes, poison sources — DESIGN.md §11.2) and gates on zero
//! store violations: every corruption must surface as a typed
//! `StoreError` and recover by re-assembly. `scripts/ci.sh` runs it as
//! a smoke gate with `--iters 200 --seed 0xDEC0DE
//! --min-static-reject 1 --min-recovery-rate 100 --store-iters 16
//! --json`.

use std::fmt::Write as _;
use udp_fault::{run_plan, run_store_plan, FuzzSummary, StoreFuzzSummary};

/// One JSON object per injection mode, one per line — no dependency
/// needed, trivially greppable/awk-able from CI.
fn render_json(summary: &FuzzSummary) -> String {
    let mut s = String::new();
    for (mode, st) in &summary.stats {
        let _ = writeln!(
            s,
            "{{\"mode\":\"{}\",\"clean\":{},\"degraded\":{},\"panicked\":{},\
             \"static_reject\":{},\"recovered\":{},\"fallback\":{},\"quarantined\":{}}}",
            mode.name(),
            st.clean,
            st.degraded,
            st.panicked,
            st.static_reject,
            st.recovered,
            st.fallback,
            st.quarantined,
        );
    }
    s
}

/// Store-corruption counters in the same one-object-per-line shape.
fn render_store_json(summary: &StoreFuzzSummary) -> String {
    let mut s = String::new();
    for (mode, st) in &summary.stats {
        let _ = writeln!(
            s,
            "{{\"mode\":\"{}\",\"runs\":{},\"violations\":{},\"detected\":{},\
             \"rebuilt\":{},\"quarantined\":{}}}",
            mode.name(),
            st.runs,
            st.violations,
            st.detected,
            st.rebuilt,
            st.quarantined,
        );
    }
    s
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut iters: u64 = 1000;
    let mut seed: u64 = 0xDEC0DE;
    let mut min_static_reject: u64 = 0;
    let mut min_recovery_rate: Option<f64> = None;
    let mut store_iters: u64 = 0;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--min-recovery-rate" => {
                min_recovery_rate = Some(
                    args.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--min-recovery-rate needs a percentage");
                            std::process::exit(2);
                        }),
                );
            }
            "--min-static-reject" => {
                min_static_reject =
                    args.next()
                        .as_deref()
                        .and_then(parse_u64)
                        .unwrap_or_else(|| {
                            eprintln!("--min-static-reject needs a number");
                            std::process::exit(2);
                        });
            }
            "--store-iters" => {
                store_iters = args
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .unwrap_or_else(|| {
                        eprintln!("--store-iters needs a number");
                        std::process::exit(2);
                    });
            }
            "--iters" => {
                iters = args
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .unwrap_or_else(|| {
                        eprintln!("--iters needs a number");
                        std::process::exit(2);
                    });
            }
            "--seed" => {
                seed = args
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number (decimal or 0x-hex)");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: fault_fuzz [--iters N] [--seed 0xHEX|N] [--min-static-reject N] \
                     [--min-recovery-rate PCT] [--store-iters N] [--json]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let summary = run_plan(seed, iters);
    print!("{summary}");
    let store_summary = (store_iters > 0).then(|| {
        let s = run_store_plan(seed, store_iters);
        print!("{s}");
        s
    });
    if json {
        let mut payload = render_json(&summary);
        if let Some(s) = &store_summary {
            payload.push_str(&render_store_json(s));
        }
        let path = "results/BENCH_fault_fuzz.json";
        if let Err(e) =
            std::fs::create_dir_all("results").and_then(|()| std::fs::write(path, &payload))
        {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("json: {path}");
        }
    }
    if let Some(s) = &store_summary {
        if s.panics() > 0 {
            eprintln!(
                "FAIL: {} artifact-store violation(s) — replay with --seed {:#x} --store-iters {}",
                s.panics(),
                seed,
                store_iters
            );
            std::process::exit(1);
        }
    }
    if summary.panics() > 0 {
        eprintln!(
            "FAIL: {} invariant violation(s) — replay with --seed {:#x} and the case indices above",
            summary.panics(),
            seed
        );
        std::process::exit(1);
    }
    if summary.static_rejects() < min_static_reject {
        eprintln!(
            "FAIL: verifier statically rejected {} image mutation(s), below the --min-static-reject {} floor",
            summary.static_rejects(),
            min_static_reject
        );
        std::process::exit(1);
    }
    if let Some(floor) = min_recovery_rate {
        match summary.transient_recovery_rate() {
            Some(rate) if rate >= floor => {
                println!("recovery_rate={rate:.1}");
            }
            Some(rate) => {
                eprintln!(
                    "FAIL: transient recovery rate {rate:.1}% is below the \
                     --min-recovery-rate {floor}% floor"
                );
                std::process::exit(1);
            }
            None => {
                eprintln!(
                    "FAIL: --min-recovery-rate set but no transient chaos case faulted \
                     (raise --iters so the chaos-transient mode runs)"
                );
                std::process::exit(1);
            }
        }
    }
    println!("ok: invariant held for all {iters} cases");
}

//! Seeded fault-injection fuzzer (DESIGN.md §8).
//!
//! Replays a deterministic [`udp_fault::FaultPlan`] against the full
//! stack — corrupted program images through `Lane` and `Udp` waves,
//! damaged Snappy streams and dirty CSV/JSON through the codecs and
//! the recovering ETL pipeline, hostile run configs, and chaos lane
//! panics — and checks the one invariant: every run terminates within
//! its cycle budget and reports a typed error or `LaneStatus::Fault`,
//! never a panic and never a hang.
//!
//! ```text
//! fault_fuzz [--iters N] [--seed 0xHEX|N] [--min-static-reject N]
//! ```
//!
//! Prints a machine-readable `key=value` summary and exits nonzero if
//! any case panicked — or, with `--min-static-reject N`, if the
//! `udp-verify` oracle rejected fewer than `N` corrupted images before
//! execution (the usefulness invariant from DESIGN.md §9);
//! `scripts/ci.sh` runs it as a smoke gate with `--iters 200
//! --seed 0xDEC0DE --min-static-reject 1`.

use udp_fault::run_plan;

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let mut iters: u64 = 1000;
    let mut seed: u64 = 0xDEC0DE;
    let mut min_static_reject: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-static-reject" => {
                min_static_reject =
                    args.next()
                        .as_deref()
                        .and_then(parse_u64)
                        .unwrap_or_else(|| {
                            eprintln!("--min-static-reject needs a number");
                            std::process::exit(2);
                        });
            }
            "--iters" => {
                iters = args
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .unwrap_or_else(|| {
                        eprintln!("--iters needs a number");
                        std::process::exit(2);
                    });
            }
            "--seed" => {
                seed = args
                    .next()
                    .as_deref()
                    .and_then(parse_u64)
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number (decimal or 0x-hex)");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                eprintln!("usage: fault_fuzz [--iters N] [--seed 0xHEX|N] [--min-static-reject N]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let summary = run_plan(seed, iters);
    print!("{summary}");
    if summary.panics() > 0 {
        eprintln!(
            "FAIL: {} invariant violation(s) — replay with --seed {:#x} and the case indices above",
            summary.panics(),
            seed
        );
        std::process::exit(1);
    }
    if summary.static_rejects() < min_static_reject {
        eprintln!(
            "FAIL: verifier statically rejected {} image mutation(s), below the --min-static-reject {} floor",
            summary.static_rejects(),
            min_static_reject
        );
        std::process::exit(1);
    }
    println!("ok: invariant held for all {iters} cases");
}

//! Figure 15: Huffman decoding (one UDP lane vs one CPU thread; full device vs 8 threads).

fn main() {
    let rows = udp_bench::suite::huffman_decode();
    udp_bench::print_comparison_table("Figure 15: Huffman decoding", &rows);
}

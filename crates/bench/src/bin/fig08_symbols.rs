//! Figure 8: variable-size symbol support — SsF / SsT / SsReg / SsRef
//! on Huffman decoding (dynamic widths) and histogramming (static
//! widths). Reports single-lane rate, code size, the code-size-limited
//! parallelism, and 64-lane-budget throughput.

use udp_asm::LayoutOptions;
use udp_codecs::{Histogram, HuffmanTree};
use udp_compilers::histogram::{histogram_to_udp_width, to_big_endian};
use udp_compilers::huffman::{
    huffman_decode_to_udp, pad_for_stride, ssref_stride, SymbolMode, SST_SIZE_FACTOR,
};
use udp_isa::mem::TOTAL_WORDS;
use udp_sim::{Lane, LaneConfig};
use udp_workloads as w;

struct Row {
    design: &'static str,
    rate_mbps: f64,
    code_kb: f64,
    parallelism: usize,
}

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>14}",
        "design", "rate MB/s", "code KB", "parallelism", "tput MB/s"
    );
    for r in rows {
        println!(
            "{:<8} {:>12.1} {:>10.1} {:>12} {:>14.0}",
            r.design,
            r.rate_mbps,
            r.code_kb,
            r.parallelism,
            r.rate_mbps * r.parallelism as f64
        );
    }
}

fn parallelism_from_kb(code_kb: f64) -> usize {
    let words = (code_kb * 1024.0 / 4.0).ceil() as usize;
    if words == 0 {
        return 64;
    }
    (TOTAL_WORDS / words).clamp(1, 64)
}

fn main() {
    let cfg = LaneConfig::default();

    // ---- Huffman decoding (dynamic symbol sizes) -------------------
    let data = w::canterbury_like(w::Entropy::Medium, 96 * 1024, 1);
    let tree = HuffmanTree::from_data(&data);
    let (bits, nbits) = tree.encode(&data);
    let mut rows = Vec::new();
    for (name, mode) in [
        ("SsF", SymbolMode::Fixed8),
        ("SsT", SymbolMode::PerTransition),
        ("SsReg", SymbolMode::Register),
        ("SsRef", SymbolMode::RegisterRefill),
    ] {
        let pb = huffman_decode_to_udp(&tree, mode);
        // Size: SsF may exceed UDP attach limits — size-model assembly.
        let stats = match pb.assemble(&LayoutOptions::with_banks(64)) {
            Ok(img) => img.stats,
            Err(_) => {
                pb.assemble(&LayoutOptions {
                    window_words: 64 * 4096,
                    share_actions: true,
                    uap_attach: true,
                    ..LayoutOptions::default()
                })
                .expect("size model fits device")
                .stats
            }
        };
        let mut code_kb = stats.code_bytes() as f64 / 1024.0;
        if mode == SymbolMode::PerTransition {
            code_kb *= SST_SIZE_FACTOR; // per-transition width bits
        }
        // Rate: run executable modes; SsF from the byte-walk cycle
        // model (1 cycle/dispatch + 1/emitted symbol) when too big.
        let rate = match pb.assemble(&LayoutOptions::with_banks(64)) {
            Ok(img) => {
                let input = if mode == SymbolMode::RegisterRefill {
                    pad_for_stride(&bits, nbits, ssref_stride(&tree))
                } else {
                    bits.clone()
                };
                let rep = Lane::run_program(&img, &input, &cfg);
                rep.rate_mbps(1.0)
            }
            Err(_) => {
                let dispatches = bits.len() as f64;
                let emits = data.len() as f64;
                bits.len() as f64 / (dispatches + emits) * 1000.0
            }
        };
        rows.push(Row {
            design: name,
            rate_mbps: rate,
            code_kb,
            parallelism: parallelism_from_kb(code_kb),
        });
    }
    print_rows("Figure 8 (Huffman decoding, dynamic symbol size)", &rows);

    // ---- Histogram (compile-time static symbol sizes) ---------------
    // SsF = 8-bit dispatch; SsT/SsReg/SsRef all run the 4-bit design
    // (no runtime width changes, so they coincide; SsT pays the
    // per-transition encoding overhead in size).
    let fares = w::fare_stream(24 * 1024, 2);
    let be = to_big_endian(&fares);
    let hist = Histogram::uniform(0.0, 100.0, 10);
    let mut rows = Vec::new();
    for (name, width, size_factor) in [
        ("SsF", 8u8, 1.0),
        ("SsT", 4, SST_SIZE_FACTOR),
        ("SsReg", 4, 1.0),
        ("SsRef", 4, 1.0),
    ] {
        let (pb, _) = histogram_to_udp_width(&hist, width);
        let img = pb
            .assemble(&LayoutOptions::with_banks(64))
            .expect("histogram fits");
        let rep = Lane::run_program(&img, &be, &cfg);
        let code_kb = img.stats.code_bytes() as f64 / 1024.0 * size_factor;
        rows.push(Row {
            design: name,
            rate_mbps: rep.rate_mbps(1.0),
            code_kb,
            parallelism: parallelism_from_kb(code_kb),
        });
    }
    print_rows("Figure 8 (Histogram, static symbol size)", &rows);
}

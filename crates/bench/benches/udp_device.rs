//! Criterion benchmarks of the simulator itself: host seconds per
//! simulated UDP work unit (useful for sizing figure-harness runs).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use udp_asm::LayoutOptions;
use udp_sim::{Lane, LaneConfig};
use udp_workloads as w;

const SIZE: usize = 64 * 1024;

fn bench_lane_dispatch(c: &mut Criterion) {
    // Trigger: 1 dispatch/byte — pure dispatch-path speed.
    let fsm = udp_codecs::TriggerFsm::new(64, 192, 5);
    let img = udp_compilers::trigger::trigger_to_udp(&fsm)
        .assemble(&LayoutOptions::with_banks(2))
        .unwrap();
    let (samples, _) = w::pulsed_waveform(SIZE, &[5], 40, 1);
    let mut g = c.benchmark_group("sim/lane");
    g.sample_size(15);
    g.throughput(Throughput::Bytes(samples.len() as u64));
    g.bench_function("trigger-dispatch", |b| {
        b.iter(|| Lane::run_program(&img, &samples, &LaneConfig::default()))
    });
    g.finish();
}

fn bench_lane_actions(c: &mut Criterion) {
    // CSV: dispatch + field-copy actions.
    let img = udp_compilers::csv::csv_to_udp()
        .assemble(&LayoutOptions::with_banks(1))
        .unwrap();
    let data = w::crimes_csv(SIZE, 2);
    let mut g = c.benchmark_group("sim/lane");
    g.sample_size(15);
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("csv-actions", |b| {
        b.iter(|| Lane::run_program(&img, &data, &LaneConfig::default()))
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    // EffCLiP layout of a mid-size DFA.
    let pats = w::nids_literals(48, 3);
    let adfa = udp_automata::Adfa::build(&pats);
    let pb = udp_compilers::automata::adfa_to_udp(&adfa);
    let mut g = c.benchmark_group("sim/assemble");
    g.sample_size(15);
    g.bench_function("effclip-adfa", |b| {
        b.iter(|| pb.assemble(&LayoutOptions::with_banks(16)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lane_dispatch,
    bench_lane_actions,
    bench_assembler
);
criterion_main!(benches);

//! Criterion microbenchmarks for the CPU baseline codecs — the
//! wall-clock side of every paper comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use udp_codecs::{
    snappy_compress, snappy_decompress, CsvParser, DictionaryEncoder, Histogram, HuffmanTree,
    TriggerFsm, TriggerLut,
};
use udp_workloads as w;

const SIZE: usize = 256 * 1024;

fn bench_csv(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu/csv");
    g.sample_size(20);
    for (name, data) in [
        ("crimes", w::crimes_csv(SIZE, 1)),
        ("food-inspection", w::food_inspection_csv(SIZE, 2)),
    ] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, d| {
            b.iter(|| CsvParser::new().parse_stats(d))
        });
    }
    g.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let data = w::canterbury_like(w::Entropy::Medium, SIZE, 3);
    let tree = HuffmanTree::from_data(&data);
    let (bits, nbits) = tree.encode(&data);
    let mut g = c.benchmark_group("cpu/huffman");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("encode", |b| b.iter(|| tree.encode(&data)));
    g.throughput(Throughput::Bytes(bits.len() as u64));
    g.bench_function("decode", |b| b.iter(|| tree.decode(&bits, nbits).unwrap()));
    g.finish();
}

fn bench_snappy(c: &mut Criterion) {
    let data = w::bdbench_block(0, SIZE, 4);
    let stream = snappy_compress(&data);
    let mut g = c.benchmark_group("cpu/snappy");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress", |b| b.iter(|| snappy_compress(&data)));
    g.throughput(Throughput::Bytes(stream.len() as u64));
    g.bench_function("decompress", |b| {
        b.iter(|| snappy_decompress(&stream).unwrap())
    });
    g.finish();
}

fn bench_dictionary(c: &mut Criterion) {
    let table = w::crimes_csv(SIZE, 5);
    let col: Vec<Vec<u8>> = CsvParser::new()
        .parse(&table)
        .into_iter()
        .skip(1)
        .map(|mut r| r.swap_remove(6))
        .collect();
    let bytes: usize = col.iter().map(|v| v.len() + 1).sum();
    let mut g = c.benchmark_group("cpu/dictionary");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("encode-column", |b| {
        b.iter(|| {
            let mut e = DictionaryEncoder::default();
            e.encode_column(&col)
        })
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let le = w::fare_stream(SIZE / 4, 6);
    let mut g = c.benchmark_group("cpu/histogram");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(le.len() as u64));
    g.bench_function("fare-4bins", |b| {
        b.iter(|| {
            let mut h = Histogram::uniform(0.0, 100.0, 4);
            h.add_le_bytes(&le);
            h.counts()[0]
        })
    });
    g.finish();
}

fn bench_patterns(c: &mut Criterion) {
    let pats = w::nids_literals(64, 7);
    let (trace, _) = w::traffic_with_matches(&pats, SIZE, 700, 7);
    let adfa = udp_automata::Adfa::build(&pats);
    let mut g = c.benchmark_group("cpu/patterns");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(trace.len() as u64));
    g.bench_function("adfa-scan", |b| b.iter(|| adfa.find_all(&trace)));
    g.finish();
}

fn bench_trigger(c: &mut Criterion) {
    let (samples, _) = w::pulsed_waveform(SIZE, &[5], 40, 8);
    let lut = TriggerLut::build(TriggerFsm::new(64, 192, 5));
    let mut g = c.benchmark_group("cpu/trigger");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(samples.len() as u64));
    g.bench_function("p5-lut", |b| b.iter(|| lut.run(&samples)));
    g.finish();
}

criterion_group!(
    benches,
    bench_csv,
    bench_huffman,
    bench_snappy,
    bench_dictionary,
    bench_histogram,
    bench_patterns,
    bench_trigger
);
criterion_main!(benches);

//! Parallel-wave determinism: the threaded engine path must reproduce
//! the sequential model bit-for-bit — same `UdpRunReport` (cycles,
//! stalls, references, outputs, per-lane status) and same post-run lane
//! windows — on real kernel programs with distinct per-lane inputs.

use udp_asm::{LayoutOptions, ProgramBuilder, ProgramImage};
use udp_codecs::HuffmanTree;
use udp_sim::engine::Staging;
use udp_sim::{Udp, UdpRunOptions, UdpRunReport};

/// Assembles into the smallest power-of-two bank window that fits.
fn assemble(pb: &ProgramBuilder, max_banks: usize) -> ProgramImage {
    let mut banks = 1;
    loop {
        match pb.assemble(&LayoutOptions::with_banks(banks)) {
            Ok(img) => return img,
            Err(_) if banks < max_banks => banks *= 2,
            Err(e) => panic!("program does not fit {max_banks} banks: {e}"),
        }
    }
}

/// Runs `image` over `inputs` twice — sequentially and with threaded
/// waves — and checks the reports and the post-run lane windows agree
/// exactly.
fn assert_bit_identical(
    image: &ProgramImage,
    inputs: &[&[u8]],
    staging: &Staging,
    banks_per_lane: usize,
) -> UdpRunReport {
    let seq_opts = UdpRunOptions {
        banks_per_lane,
        parallel: false,
        ..Default::default()
    };
    let par_opts = UdpRunOptions {
        parallel: true,
        ..seq_opts.clone()
    };
    let mut seq_udp = Udp::new();
    let seq = seq_udp.run_data_parallel(image, inputs, staging, &seq_opts);
    let mut par_udp = Udp::new();
    let par = par_udp.run_data_parallel(image, inputs, staging, &par_opts);

    assert_eq!(seq, par, "parallel report diverged from sequential");

    // The copied-back lane windows must match what the sequential run
    // left in device memory (read_lane_bytes compatibility).
    let lanes_cap = (64 / banks_per_lane.max(1)).max(1);
    let window_bytes = banks_per_lane * udp_isa::mem::BANK_WORDS * 4;
    for lane in 0..lanes_cap.min(inputs.len()) {
        assert_eq!(
            seq_udp.read_lane_bytes(lane, banks_per_lane, 0, window_bytes),
            par_udp.read_lane_bytes(lane, banks_per_lane, 0, window_bytes),
            "lane {lane} window diverged"
        );
    }
    par
}

/// Runs each input through a bare lazy lane — `Lane::new`, no
/// predecoded table, so every transition/action word is decoded as it
/// is read and the engine's pristine-code fast loop never engages —
/// and checks the per-lane reports match the engine's predecoded run.
/// This pins the predecode + fast-loop machinery to the reference
/// decode-on-read semantics.
fn assert_lazy_equivalent(image: &ProgramImage, inputs: &[&[u8]], rep: &UdpRunReport) {
    use udp_sim::{BitStream, Lane, LaneConfig, LocalMemory, OutputSink};
    let window_words = udp_isa::mem::BANK_WORDS;
    for (input, engine_lane) in inputs.iter().zip(&rep.lanes) {
        let mut mem = LocalMemory::with_words(window_words);
        mem.load_words(0, &image.words);
        let mut lane = Lane::new(image, 0);
        let mut stream = BitStream::new(input);
        let mut out = OutputSink::new();
        let lazy = lane.run(&mut mem, &mut stream, &mut out, &LaneConfig::default());
        assert_eq!(&lazy, engine_lane, "lazy lane diverged from engine lane");
    }
}

#[test]
fn csv_parallel_waves_are_bit_identical() {
    // 70 distinct chunks > 64 lanes forces a second wave, and the
    // varying seeds give every lane different work (different cycle
    // counts, outputs, and reference counts).
    let img = assemble(&udp_compilers::csv::csv_to_udp(), 8);
    let chunks: Vec<Vec<u8>> = (0..70u64)
        .map(|seed| udp_workloads::crimes_csv(1500 + (seed as usize % 7) * 300, seed))
        .collect();
    let inputs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
    let rep = assert_bit_identical(&img, &inputs, &Staging::default(), 1);
    assert_eq!(rep.lanes.len(), 70);
    assert!(rep.lanes.iter().any(|l| !l.output.is_empty()));
    assert_lazy_equivalent(&img, &inputs, &rep);
}

#[test]
fn huffman_encode_parallel_waves_are_bit_identical() {
    // Build the canonical code over the union of all lane inputs so
    // every symbol is encodable, then encode a different chunk per lane.
    let chunks: Vec<Vec<u8>> = (0..16u64)
        .map(|seed| udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 4000, seed))
        .collect();
    let all: Vec<u8> = chunks.iter().flatten().copied().collect();
    let tree = HuffmanTree::from_data(&all);
    let img = assemble(&udp_compilers::huffman::huffman_encode_to_udp(&tree), 8);
    let inputs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
    let rep = assert_bit_identical(&img, &inputs, &Staging::default(), 1);

    assert_lazy_equivalent(&img, &inputs, &rep);

    // Outputs are not merely equal between the two paths — they are the
    // actual Huffman streams.
    for (lane, chunk) in rep.lanes.iter().zip(&chunks) {
        let (expect, _) = tree.encode(chunk);
        assert_eq!(lane.output, expect, "lane output is not the encoding");
    }
}

#[test]
fn staged_dictionary_parallel_waves_are_bit_identical() {
    // A kernel with per-lane staging (dictionary segments + preset
    // registers) exercises the threaded path's staging at origin 0.
    let vals: Vec<String> = (0..400).map(|i| format!("cat-{}", i % 13)).collect();
    let mut enc = udp_codecs::DictionaryEncoder::default();
    enc.encode_column(&vals);
    let stg = udp_compilers::dict::stage_dictionary(enc.dictionary());
    let staging = Staging {
        segments: stg.segments.clone(),
        regs: stg.regs.clone(),
    };
    let img = assemble(&udp_compilers::dict::dict_to_udp(stg.k), 8);
    let input = udp_compilers::dict::join_tokens(&vals);
    let inputs: Vec<&[u8]> = vec![&input; 10];
    assert_bit_identical(&img, &inputs, &staging, 1);
}

//! Empirical soundness gate for static resource certification
//! (DESIGN.md §9.1).
//!
//! The verifier's cost bounds are only trustworthy if observed
//! executions never exceed them, so this suite runs every certified
//! corpus program over adversarially generic inputs on all execution
//! paths — sequential interpreter, pooled waves, and the compiled
//! backend — and asserts per lane that
//!
//! * `cycles <= cert.cycle_bound(input.len())`, and
//! * `output.len() <= cert.output_bound(input.len())`.
//!
//! A second test bit-flips code words of certified images: a mutant
//! must either fail certification (the verifier refuses to vouch for
//! it) or, if it still certifies, stay inside its *own* recomputed
//! bounds. A proptest closes the loop on randomly generated
//! verifier-clean programs.

use proptest::prelude::*;
use udp_asm::{ProgramImage, Target};
use udp_compilers::corpus::{assemble_smallest, corpus};
use udp_isa::action::Action;
use udp_isa::mem::BANK_WORDS;
use udp_isa::{Opcode, Reg};
use udp_sim::engine::Staging;
use udp_sim::{ExecBackend, Udp, UdpRunOptions};
use udp_verify::{verify_image, VerifyOptions};

/// Deterministic input suite: empty, structured text, the full byte
/// alphabet, repetitive runs, pattern-bait, and xorshift noise.
fn generic_inputs() -> Vec<Vec<u8>> {
    let mut inputs = vec![
        Vec::new(),
        b"a,b,c\nfoo,bar,baz\n\"q,\"\"q\",2\n".to_vec(),
        (0u8..=255).collect(),
        b"aaabbbcccdddaabbccdd".repeat(40),
        b"id123;id45;xyzzyab*cfoobarium".repeat(16),
    ];
    let mut x = 0x243f_6a88_85a3_08d3u64;
    let mut noise = Vec::with_capacity(2048);
    for _ in 0..2048 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        noise.push((x >> 24) as u8);
    }
    inputs.push(noise);
    inputs
}

/// All corpus programs that earn a complete certificate, with the
/// certificate attached to the image so the engine's cert-derived
/// budgets engage exactly as they would in production.
fn certified_images() -> Vec<(String, ProgramImage)> {
    corpus()
        .iter()
        .filter_map(|(name, pb)| {
            let mut img = assemble_smallest(pb, 64).ok()?;
            let report = verify_image(&img, &VerifyOptions::default());
            let cert = report.cert?;
            if !cert.is_complete() {
                return None;
            }
            img.cert = Some(cert);
            Some((name.clone(), img))
        })
        .collect()
}

/// The three execution paths under test.
fn exec_paths() -> [(&'static str, ExecBackend, bool); 3] {
    [
        ("interp-seq", ExecBackend::Interpreter, false),
        ("interp-pooled", ExecBackend::Interpreter, true),
        ("compiled", ExecBackend::Compiled, false),
    ]
}

/// Runs `image` over `inputs` on every execution path and asserts each
/// lane observes no more cycles or output bytes than the certificate
/// allows for its input length.
fn assert_bounds_hold(name: &str, image: &ProgramImage, inputs: &[&[u8]]) {
    let cert = image.cert.as_ref().expect("certified image");
    let banks = image.stats.span_words.div_ceil(BANK_WORDS).max(1);
    for (path, backend, parallel) in exec_paths() {
        let opts = UdpRunOptions {
            banks_per_lane: banks,
            parallel,
            backend,
            ..UdpRunOptions::default()
        };
        let rep = Udp::new()
            .try_run_data_parallel(image, inputs, &Staging::default(), &opts)
            .unwrap_or_else(|e| panic!("{name}/{path}: run refused: {e}"));
        for (lane, input) in rep.lanes.iter().zip(inputs) {
            let cyc_bound = cert.cycle_bound(input.len()).expect("complete cert");
            let out_bound = cert.output_bound(input.len()).expect("complete cert");
            assert!(
                lane.cycles <= cyc_bound,
                "{name}/{path}: {} cycles exceeds certified bound {} for {} input bytes \
                 (cert: {})",
                lane.cycles,
                cyc_bound,
                input.len(),
                cert.summary()
            );
            assert!(
                lane.output.len() as u64 <= out_bound,
                "{name}/{path}: {} output bytes exceeds certified bound {} for {} input bytes \
                 (cert: {})",
                lane.output.len(),
                out_bound,
                input.len(),
                cert.summary()
            );
        }
    }
}

#[test]
fn certified_bounds_hold_on_generic_inputs_across_backends() {
    let images = certified_images();
    // The gate is only meaningful if certification keeps working for
    // the bulk of the corpus.
    assert!(
        images.len() >= 20,
        "only {} corpus programs certified; the cost model regressed",
        images.len()
    );
    let inputs = generic_inputs();
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    for (name, img) in &images {
        assert_bounds_hold(name, img, &refs);
    }
}

/// The bit-burst superop (DESIGN.md §2.6.4) defers every counter to a
/// bulk sync at burst exit; the certified claim is pointwise per lane.
/// This test pins that the kernels whose certificates advertise fused
/// bit-emit blocks — exactly the ones the compiled backend runs
/// through the bit-burst loop — stay inside their bounds on workload-
/// realistic inputs (compressible text for the encoder, an actually
/// encoded bit stream for the refill decoder), not just generic noise.
#[test]
fn bit_burst_fused_kernels_stay_in_certified_bounds() {
    let images = certified_images();
    let text = udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 32 * 1024, 3);
    let tree = udp_codecs::HuffmanTree::from_data(&text);
    let (bits, nbits) = tree.encode(&text);
    let mut exercised = 0usize;
    for (name, img) in &images {
        let cert = img.cert.as_ref().expect("certified image");
        if cert.fused_bitemit_blocks == 0 {
            continue;
        }
        exercised += 1;
        let mut inputs = generic_inputs();
        inputs.push(text.clone());
        if name.contains("decode") {
            inputs.push(udp_compilers::huffman::pad_for_stride(&bits, nbits, 8));
        }
        let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        assert_bounds_hold(name, img, &refs);
    }
    // Encoder plus the three bounded decoder designs: if this shrinks,
    // either certification or the bit-emit count regressed.
    assert!(
        exercised >= 4,
        "only {exercised} certified kernels advertise fused bit-emit blocks"
    );
}

#[test]
fn mutated_images_fail_certification_or_stay_in_bounds() {
    let inputs = generic_inputs();
    let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
    let targets = ["csv", "bitpack-enc-w4", "dfa", "huffman-encode"];
    let images = certified_images();
    let mut recertified = 0usize;
    let mut refused = 0usize;
    for (name, img) in images.iter().filter(|(n, _)| targets.contains(&n.as_str())) {
        let words = img.stats.words_used.max(1);
        // A deterministic sweep of single-bit faults across the code
        // window: low bits corrupt opcodes/targets, high bits corrupt
        // immediates.
        for step in 0..16usize {
            let widx = (step * 97) % words;
            for bit in [0u32, 7, 13, 22] {
                let mut mutant = img.clone();
                mutant.words[widx] ^= 1 << bit;
                mutant.cert = None;
                let report = verify_image(&mutant, &VerifyOptions::default());
                let cert = match report.cert {
                    Some(c) if c.is_complete() && report.errors() == 0 => c,
                    _ => {
                        // The verifier refuses to vouch for the mutant:
                        // exactly the safe outcome.
                        refused += 1;
                        continue;
                    }
                };
                mutant.cert = Some(cert);
                recertified += 1;
                assert_bounds_hold(&format!("{name}+w{widx}b{bit}"), &mutant, &refs);
            }
        }
    }
    // The sweep must exercise both outcomes to mean anything.
    assert!(refused > 0, "no mutant was refused certification");
    assert!(recertified > 0, "no mutant re-certified");
}

/// Builds a random small consuming-state program from a verifier-safe
/// construction vocabulary. Not all outputs are verifier-clean (some
/// states may be unreachable, some arcs degenerate) — the property
/// filters on a clean report with a complete certificate.
fn random_program(
    n_states: usize,
    arcs: &[(usize, u8, usize, u8)],
    fallbacks: &[usize],
) -> Option<ProgramImage> {
    let mut b = udp_asm::ProgramBuilder::new();
    let states: Vec<_> = (0..n_states).map(|_| b.add_consuming_state()).collect();
    b.set_entry(states[0]);
    let mut seen = std::collections::HashSet::new();
    for &(from, sym, to, act) in arcs {
        // The builder rejects duplicate (state, symbol) labels.
        if !seen.insert((from % n_states, sym)) {
            continue;
        }
        let target = if to >= n_states {
            Target::Halt
        } else {
            Target::State(states[to])
        };
        let actions = match act % 4 {
            0 => vec![],
            1 => vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, u16::from(sym))],
            2 => vec![Action::imm(Opcode::AddI, Reg::new(2), Reg::new(2), 3)],
            _ => vec![
                Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, u16::from(sym)),
                Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, 0x21),
            ],
        };
        b.labeled_arc(states[from % n_states], u16::from(sym), target, actions);
    }
    for (i, &fb) in fallbacks.iter().enumerate().take(n_states) {
        let target = if fb >= n_states {
            Target::Halt
        } else {
            Target::State(states[fb])
        };
        b.fallback_arc(states[i], target, vec![]);
    }
    b.assemble(&udp_asm::LayoutOptions::default()).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any randomly built program that verifies clean and certifies
    /// completely must stay inside its bounds on random input, on all
    /// three execution paths.
    #[test]
    fn random_clean_programs_respect_their_certificates(
        n_states in 1usize..4,
        arcs in proptest::collection::vec(
            (0usize..4, any::<u8>(), 0usize..5, any::<u8>()),
            1..10,
        ),
        fallbacks in proptest::collection::vec(0usize..5, 4),
        input in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let img = random_program(n_states, &arcs, &fallbacks);
        let certified = img.and_then(|mut img| {
            let report = verify_image(&img, &VerifyOptions::default());
            if report.errors() > 0 {
                return None;
            }
            let cert = report.cert.filter(|c| c.is_complete())?;
            img.cert = Some(cert.clone());
            Some((img, cert))
        });
        if let Some((img, cert)) = certified {
            let banks = img.stats.span_words.div_ceil(BANK_WORDS).max(1);
            for (path, backend, parallel) in exec_paths() {
                let opts = UdpRunOptions {
                    banks_per_lane: banks,
                    parallel,
                    backend,
                    ..UdpRunOptions::default()
                };
                let rep = Udp::new()
                    .try_run_data_parallel(&img, &[input.as_slice()], &Staging::default(), &opts)
                    .unwrap_or_else(|e| panic!("{path}: run refused: {e}"));
                let lane = &rep.lanes[0];
                let cyc_bound = cert.cycle_bound(input.len()).expect("complete cert");
                let out_bound = cert.output_bound(input.len()).expect("complete cert");
                prop_assert!(
                    lane.cycles <= cyc_bound,
                    "{}: {} cycles > bound {} ({})",
                    path, lane.cycles, cyc_bound, cert.summary()
                );
                prop_assert!(
                    lane.output.len() as u64 <= out_bound,
                    "{}: {} out bytes > bound {} ({})",
                    path, lane.output.len(), out_bound, cert.summary()
                );
            }
        }
    }
}

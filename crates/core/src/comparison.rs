//! Table 4: published specialized-accelerator operating points, used to
//! situate measured UDP numbers ("UDP Relative Perf" columns).

/// One comparison row.
#[derive(Debug, Clone)]
pub struct AcceleratorPoint {
    /// Accelerator.
    pub accelerator: &'static str,
    /// The accelerator's algorithm.
    pub algorithm: &'static str,
    /// The UDP algorithm compared against it.
    pub udp_algorithm: &'static str,
    /// Published accelerator throughput, GB/s.
    pub perf_gbps: f64,
    /// Published power in watts (`None` where the paper compares area
    /// or FPGA resources instead).
    pub power_w: Option<f64>,
    /// The paper's UDP-relative performance (UDP / accelerator).
    pub paper_udp_relative_perf: f64,
}

/// Table 4, as published.
pub const TABLE4: &[AcceleratorPoint] = &[
    AcceleratorPoint {
        accelerator: "UAP",
        algorithm: "String match (ADFA)",
        udp_algorithm: "String match (ADFA)",
        perf_gbps: 38.0,
        power_w: Some(0.56),
        paper_udp_relative_perf: 0.58,
    },
    AcceleratorPoint {
        accelerator: "UAP",
        algorithm: "Regex match (NFA)",
        udp_algorithm: "Regex match (NFA)",
        perf_gbps: 15.0,
        power_w: Some(0.56),
        paper_udp_relative_perf: 0.48,
    },
    AcceleratorPoint {
        accelerator: "Intel Chipset 89xx",
        algorithm: "DEFLATE",
        udp_algorithm: "Snappy compress",
        perf_gbps: 1.4,
        power_w: Some(0.20),
        paper_udp_relative_perf: 2.1,
    },
    AcceleratorPoint {
        accelerator: "Microsoft Xpress (FPGA)",
        algorithm: "Xpress",
        udp_algorithm: "Snappy compress",
        perf_gbps: 5.6,
        power_w: None,
        paper_udp_relative_perf: 0.54,
    },
    AcceleratorPoint {
        accelerator: "Oracle Sparc M7 DAX",
        algorithm: "RLE/Huffman/Bit-pack/OZIP",
        udp_algorithm: "Huffman/RLE/Dictionary",
        perf_gbps: 1.5,
        power_w: None,
        paper_udp_relative_perf: 0.4,
    },
    AcceleratorPoint {
        accelerator: "IBM PowerEN XML",
        algorithm: "XML parse",
        udp_algorithm: "CSV parse",
        perf_gbps: 1.5,
        power_w: Some(1.95),
        paper_udp_relative_perf: 2.9,
    },
    AcceleratorPoint {
        accelerator: "IBM PowerEN Compress",
        algorithm: "DEFLATE",
        udp_algorithm: "Snappy compress",
        perf_gbps: 1.0,
        power_w: Some(0.30),
        paper_udp_relative_perf: 3.0,
    },
    AcceleratorPoint {
        accelerator: "IBM PowerEN Decomp",
        algorithm: "INFLATE",
        udp_algorithm: "Snappy decompress",
        perf_gbps: 1.0,
        power_w: Some(0.30),
        paper_udp_relative_perf: 13.0,
    },
    AcceleratorPoint {
        accelerator: "IBM PowerEN RegX",
        algorithm: "String match",
        udp_algorithm: "String match (ADFA)",
        perf_gbps: 5.0,
        power_w: Some(1.95),
        paper_udp_relative_perf: 4.4,
    },
    AcceleratorPoint {
        accelerator: "IBM PowerEN RegX",
        algorithm: "Regex match",
        udp_algorithm: "Regex match (NFA)",
        perf_gbps: 5.0,
        power_w: Some(1.95),
        paper_udp_relative_perf: 1.5,
    },
];

/// Computes our measured UDP-relative performance for a row.
pub fn measured_relative_perf(row: &AcceleratorPoint, udp_throughput_mbps: f64) -> f64 {
    (udp_throughput_mbps / 1000.0) / row.perf_gbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_spans_the_paper_range() {
        let min = TABLE4
            .iter()
            .map(|r| r.paper_udp_relative_perf)
            .fold(f64::MAX, f64::min);
        let max = TABLE4
            .iter()
            .map(|r| r.paper_udp_relative_perf)
            .fold(0.0, f64::max);
        // "at worst nearly 2x slower and up to 13x faster"
        assert!((0.3..1.0).contains(&min));
        assert!((max - 13.0).abs() < f64::EPSILON);
    }

    #[test]
    fn relative_perf_math() {
        let row = &TABLE4[2]; // 1.4 GB/s
        assert!((measured_relative_perf(row, 2800.0) - 2.0).abs() < 1e-9);
    }
}

//! Turnkey kernel runners — one per paper kernel (§5).
//!
//! Each runner compiles the translator output, stages per-lane data,
//! runs the full device data-parallel (inputs are duplicated across
//! lanes, the paper's own methodology for the Canterbury corpus: "we
//! duplicate the data to provide 64-lane parallelism", §4.1), verifies
//! the output against the CPU baseline, and reports the paper's
//! metrics: single-lane *Rate* (MB/s), device *Throughput* (MB/s), and
//! *Throughput/Watt* against the fixed 0.864 W system power.

use udp_asm::{LayoutOptions, ProgramImage};
use udp_isa::mem::BANK_WORDS;
use udp_isa::Reg;
use udp_sim::energy::{UDP_CLOCK_GHZ, UDP_SYSTEM_WATTS};
use udp_sim::engine::Staging;
use udp_sim::{Udp, UdpRunOptions};

/// A device-level kernel measurement.
#[derive(Debug, Clone)]
pub struct UdpKernelReport {
    /// Kernel name.
    pub name: String,
    /// Single-lane input rate, MB/s at 1 GHz.
    pub lane_rate_mbps: f64,
    /// Aggregate device throughput, MB/s.
    pub throughput_mbps: f64,
    /// Lanes that ran.
    pub lanes: usize,
    /// Banks per lane window.
    pub banks_per_lane: usize,
    /// Wall cycles of the run.
    pub wall_cycles: u64,
    /// Total input bytes across lanes.
    pub bytes_in: u64,
    /// Assembled program size in bytes.
    pub code_bytes: usize,
}

impl UdpKernelReport {
    /// Power efficiency: MB/s per watt at the paper's 0.864 W system
    /// power.
    pub fn tput_per_watt(&self) -> f64 {
        self.throughput_mbps / UDP_SYSTEM_WATTS
    }
}

/// Reads the `UDP_PARALLEL` environment knob: set to anything other
/// than `0`/`false` to execute each wave's lanes on host threads. The
/// modeled results are bit-identical either way (see
/// `UdpRunOptions::parallel`); the knob only changes host wall-clock.
pub fn parallel_from_env() -> bool {
    std::env::var("UDP_PARALLEL")
        .map(|v| v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false)
}

/// Banks needed to cover both code and the staged data segments.
fn banks_for(image: &ProgramImage, staging: &Staging) -> usize {
    let code = image.stats.span_words.div_ceil(BANK_WORDS);
    let data = staging
        .segments
        .iter()
        .map(|(off, bytes)| (*off as usize + bytes.len()).div_ceil(BANK_WORDS * 4))
        .max()
        .unwrap_or(0);
    code.max(data).clamp(1, 64)
}

/// Runs `image` on the device with `input` duplicated across every
/// available lane.
fn run_duplicated(
    name: &str,
    image: &ProgramImage,
    input: &[u8],
    staging: &Staging,
    min_banks: usize,
) -> (udp_sim::UdpRunReport, UdpKernelReport) {
    let banks = banks_for(image, staging).max(min_banks);
    let lanes = (64 / banks).max(1);
    let mut udp = Udp::new();
    let inputs: Vec<&[u8]> = vec![input; lanes];
    let rep = udp.run_data_parallel(
        image,
        &inputs,
        staging,
        &UdpRunOptions {
            banks_per_lane: banks,
            parallel: parallel_from_env(),
            ..Default::default()
        },
    );
    let lane0 = &rep.lanes[0];
    let kr = UdpKernelReport {
        name: name.to_string(),
        lane_rate_mbps: lane0.rate_mbps(UDP_CLOCK_GHZ),
        throughput_mbps: rep.throughput_mbps(UDP_CLOCK_GHZ),
        lanes,
        banks_per_lane: banks,
        wall_cycles: rep.wall_cycles,
        bytes_in: rep.bytes_in,
        code_bytes: image.stats.code_bytes(),
    };
    (rep, kr)
}

fn assemble(pb: &udp_asm::ProgramBuilder, max_banks: usize) -> ProgramImage {
    // Find the smallest window that fits.
    let mut banks = 1;
    loop {
        match pb.assemble(&LayoutOptions::with_banks(banks)) {
            Ok(img) => return img,
            Err(_) if banks < max_banks => banks *= 2,
            Err(e) => panic!("program does not fit {max_banks} banks: {e}"),
        }
    }
}

/// CSV parsing (§5.1).
pub mod csv {
    use super::*;
    use udp_compilers::csv::{baseline_framing, csv_to_udp};

    /// Parses `data` (must be `\n`-terminated RFC 4180 CSV) on the
    /// device, verifying the extracted fields against the CPU parser.
    ///
    /// # Panics
    ///
    /// Panics if the UDP output disagrees with the baseline.
    pub fn run(data: &[u8]) -> UdpKernelReport {
        let img = assemble(&csv_to_udp(), 8);
        let (rep, kr) = run_duplicated("csv-parse", &img, data, &Staging::default(), 1);
        assert_eq!(rep.lanes[0].output, baseline_framing(data), "csv mismatch");
        kr
    }
}

/// Huffman coding (§5.2).
pub mod huffman {
    use super::*;
    use udp_codecs::HuffmanTree;
    use udp_compilers::huffman::{
        huffman_decode_to_udp, huffman_encode_to_udp, pad_for_stride, ssref_stride,
        truncate_decoded, SymbolMode,
    };

    /// Encodes `data` with its own canonical code on the device.
    pub fn run_encode(data: &[u8]) -> UdpKernelReport {
        let tree = HuffmanTree::from_data(data);
        let img = assemble(&huffman_encode_to_udp(&tree), 8);
        let (rep, kr) = run_duplicated("huffman-encode", &img, data, &Staging::default(), 1);
        let (expect, _) = tree.encode(data);
        assert_eq!(rep.lanes[0].output, expect, "huffman encode mismatch");
        kr
    }

    /// Decodes `data`'s self-encoded stream on the device (SsRef mode).
    pub fn run_decode(data: &[u8]) -> UdpKernelReport {
        let tree = HuffmanTree::from_data(data);
        let (bits, nbits) = tree.encode(data);
        let padded = pad_for_stride(&bits, nbits, ssref_stride(&tree));
        let img = assemble(
            &huffman_decode_to_udp(&tree, SymbolMode::RegisterRefill),
            64,
        );
        let (rep, kr) = run_duplicated("huffman-decode", &img, &padded, &Staging::default(), 1);
        assert_eq!(
            truncate_decoded(rep.lanes[0].output.clone(), data.len()),
            data,
            "huffman decode mismatch"
        );
        kr
    }
}

/// Pattern matching (§5.3).
pub mod patterns {
    use super::*;
    use udp_automata::{Adfa, Dfa, Nfa, Regex};
    use udp_compilers::automata::{adfa_to_udp, dfa_to_udp, nfa_to_udp};
    use udp_sim::engine::run_nfa;
    use udp_sim::LaneConfig;

    /// Multi-pattern string matching with the ADFA model.
    ///
    /// # Panics
    ///
    /// Panics if the reported matches disagree with the reference scan.
    pub fn run_adfa<P: AsRef<[u8]>>(pats: &[P], trace: &[u8]) -> UdpKernelReport {
        let adfa = Adfa::build(pats);
        let img = assemble(&adfa_to_udp(&adfa), 16);
        let (rep, kr) = run_duplicated("adfa-match", &img, trace, &Staging::default(), 1);
        let mut got: Vec<(u16, u32)> = rep.lanes[0].reports.clone();
        got.sort_unstable();
        got.dedup();
        let mut expect: Vec<(u16, u32)> = adfa
            .find_all(trace)
            .into_iter()
            .map(|(id, e)| (id, e as u32))
            .collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(got, expect, "adfa mismatch");
        kr
    }

    /// Regex matching with the scanning-DFA model. Patterns are
    /// partitioned across lanes so each group's DFA stays small
    /// (§5.3: "the collection of patterns are partitioned across UDP
    /// lanes, maintaining data parallelism"): with `G` groups, `64/G`
    /// lanes remain for data parallelism.
    pub fn run_dfa(regexes: &[&str], trace: &[u8]) -> UdpKernelReport {
        // Greedy partition: grow a group while its DFA fits 2 banks.
        let mut groups: Vec<Vec<&str>> = Vec::new();
        let mut current: Vec<&str> = Vec::new();
        let fits = |set: &[&str]| -> bool {
            let asts: Vec<Regex> = set.iter().map(|p| Regex::parse(p).unwrap()).collect();
            let dfa = Dfa::determinize(&Nfa::scanner(&asts)).minimize();
            dfa_to_udp(&dfa)
                .assemble(&LayoutOptions::with_banks(2))
                .is_ok()
        };
        for &p in regexes {
            current.push(p);
            if !fits(&current) {
                let last = current.pop().expect("just pushed");
                assert!(!current.is_empty(), "single pattern exceeds 2 banks");
                groups.push(std::mem::take(&mut current));
                current.push(last);
            }
        }
        if !current.is_empty() {
            groups.push(current);
        }

        // Run every group on the trace; the slowest group gates the
        // wall clock, and 64/G lanes remain per group.
        let n_groups = groups.len().max(1);
        let lanes = (64 / n_groups).max(1);
        let mut min_rate = f64::MAX;
        let mut wall = 0u64;
        let mut code_bytes = 0usize;
        let mut id_base = 0u16;
        let mut got: Vec<(u16, u32)> = Vec::new();
        for group in &groups {
            let asts: Vec<Regex> = group.iter().map(|p| Regex::parse(p).unwrap()).collect();
            let dfa = Dfa::determinize(&Nfa::scanner(&asts)).minimize();
            let img = assemble(&dfa_to_udp(&dfa), 2);
            let rep = udp_sim::Lane::run_program(&img, trace, &udp_sim::LaneConfig::default());
            got.extend(rep.reports.iter().map(|&(id, p)| (id + id_base, p)));
            min_rate = min_rate.min(rep.rate_mbps(UDP_CLOCK_GHZ));
            wall = wall.max(rep.cycles);
            code_bytes += img.stats.code_bytes();
            id_base += group.len() as u16;
        }
        got.sort_unstable();
        got.dedup();

        // Verify against the single combined DFA.
        let asts: Vec<Regex> = regexes.iter().map(|p| Regex::parse(p).unwrap()).collect();
        let dfa = Dfa::determinize(&Nfa::scanner(&asts)).minimize();
        let mut expect: Vec<(u16, u32)> = dfa
            .find_all(trace)
            .into_iter()
            .filter(|&(_, e)| e > 0)
            .map(|(id, e)| (id, e as u32))
            .collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(got, expect, "dfa mismatch");

        UdpKernelReport {
            name: "dfa-match".to_string(),
            lane_rate_mbps: min_rate,
            throughput_mbps: min_rate * lanes as f64,
            lanes,
            banks_per_lane: 2 * n_groups.min(32),
            wall_cycles: wall,
            bytes_in: trace.len() as u64 * lanes as u64,
            code_bytes,
        }
    }

    /// Regex matching with the NFA multi-activation model (patterns
    /// partitioned across lanes, §5.3).
    pub fn run_nfa_model(regexes: &[&str], trace: &[u8]) -> UdpKernelReport {
        let asts: Vec<Regex> = regexes.iter().map(|p| Regex::parse(p).unwrap()).collect();
        let nfa = Nfa::scanner(&asts);
        let pb = nfa_to_udp(&nfa);
        let img = pb
            .assemble(&LayoutOptions::with_banks(1))
            .expect("NFA programs are single-bank; partition the patterns");
        let rep = run_nfa(&img, trace, &LaneConfig::default());
        let mut got = rep.reports.clone();
        got.sort_unstable();
        got.dedup();
        let mut expect: Vec<(u16, u32)> = nfa
            .find_all(trace)
            .into_iter()
            .filter(|&(_, e)| e > 0)
            .map(|(id, e)| (id, e as u32))
            .collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(got, expect, "nfa mismatch");
        let rate = rep.rate_mbps(UDP_CLOCK_GHZ);
        UdpKernelReport {
            name: "nfa-match".to_string(),
            lane_rate_mbps: rate,
            throughput_mbps: rate * 64.0,
            lanes: 64,
            banks_per_lane: 1,
            wall_cycles: rep.cycles,
            bytes_in: rep.bytes_consumed * 64,
            code_bytes: img.stats.code_bytes(),
        }
    }
}

/// Dictionary encoding (§5.4).
pub mod dict {
    use super::*;
    use udp_codecs::{DictionaryEncoder, Run};
    use udp_compilers::dict::{
        decode_codes, dict_rle_to_udp, dict_to_udp, finish_dict_rle, join_tokens, stage_dictionary,
    };

    fn staging_of(d: &udp_compilers::dict::DictStaging) -> Staging {
        Staging {
            segments: d.segments.clone(),
            regs: d.regs.clone(),
        }
    }

    /// Dictionary-encodes a column against a host-built dictionary.
    pub fn run<V: AsRef<[u8]>>(column: &[V]) -> UdpKernelReport {
        let mut enc = DictionaryEncoder::default();
        let expect = enc.encode_column(column);
        let stg = stage_dictionary(enc.dictionary());
        let img = assemble(&dict_to_udp(stg.k), 8);
        assert!(
            img.stats.span_words * 4 <= usize::from(udp_compilers::dict::SCRATCH_PREV),
            "dictionary program overlaps its staging area"
        );
        let input = join_tokens(column);
        let (rep, kr) = run_duplicated("dictionary", &img, &input, &staging_of(&stg), 1);
        assert_eq!(decode_codes(&rep.lanes[0].output), expect, "dict mismatch");
        kr
    }

    /// Dictionary + run-length encoding.
    pub fn run_rle<V: AsRef<[u8]>>(column: &[V]) -> UdpKernelReport {
        let mut enc = DictionaryEncoder::default();
        let codes = enc.encode_column(column);
        let expect = udp_codecs::rle_encode(&codes);
        let stg = stage_dictionary(enc.dictionary());
        let img = assemble(&dict_rle_to_udp(stg.k), 8);
        assert!(
            img.stats.span_words * 4 <= usize::from(udp_compilers::dict::SCRATCH_PREV),
            "dictionary-RLE program overlaps its staging area"
        );
        let input = join_tokens(column);

        let banks = banks_for(&img, &staging_of(&stg));
        let mut udp = Udp::new();
        let lanes = 64 / banks;
        let inputs: Vec<&[u8]> = vec![&input; lanes];
        let rep = udp.run_data_parallel(
            &img,
            &inputs,
            &staging_of(&stg),
            &UdpRunOptions {
                banks_per_lane: banks,
                parallel: parallel_from_env(),
                ..Default::default()
            },
        );
        // Reconstruct lane 0's runs (trailing run lives in lane memory).
        let flat = decode_codes(&rep.lanes[0].output);
        let mut runs: Vec<Run<u32>> = flat
            .chunks_exact(2)
            .map(|p| Run {
                value: p[0],
                length: p[1],
            })
            .collect();
        let scratch =
            udp.read_lane_bytes(0, banks, u32::from(udp_compilers::dict::SCRATCH_PREV), 8);
        let prev = u32::from_le_bytes(scratch[0..4].try_into().expect("4"));
        let count = u32::from_le_bytes(scratch[4..8].try_into().expect("4"));
        if prev != 0 {
            runs.push(Run {
                value: prev - 1,
                length: count,
            });
        }
        assert_eq!(runs, expect, "dict-rle mismatch");
        let _ = finish_dict_rle;
        let lane0 = &rep.lanes[0];
        UdpKernelReport {
            name: "dictionary-rle".to_string(),
            lane_rate_mbps: lane0.rate_mbps(UDP_CLOCK_GHZ),
            throughput_mbps: rep.throughput_mbps(UDP_CLOCK_GHZ),
            lanes,
            banks_per_lane: banks,
            wall_cycles: rep.wall_cycles,
            bytes_in: rep.bytes_in,
            code_bytes: img.stats.code_bytes(),
        }
    }
}

/// Histogramming (§5.5).
pub mod histogram {
    use super::*;
    use udp_codecs::Histogram;
    use udp_compilers::histogram::{histogram_to_udp, read_bins, to_big_endian};
    use udp_sim::{Lane, LaneConfig};

    /// Bins a little-endian `f32` stream, verifying counts against the
    /// GSL-style baseline.
    pub fn run(le_bytes: &[u8], hist: &Histogram) -> UdpKernelReport {
        let (pb, layout) = histogram_to_udp(hist);
        let img = assemble(&pb, 8);
        let be = to_big_endian(le_bytes);
        let (rep, kr) = run_duplicated("histogram", &img, &be, &Staging::default(), 1);

        // Verify on a dedicated single-lane run (bin tables of the
        // duplicated lanes all hold identical counts).
        let (_, mem) =
            Lane::run_program_capture(&img, &be, &Staging::default(), &LaneConfig::default());
        let bins = read_bins(&mem, &layout);
        let mut base = Histogram::with_edges(hist.edges().to_vec());
        base.add_le_bytes(le_bytes);
        let mut expect: Vec<u64> = base.counts().to_vec();
        expect.push(base.outliers());
        assert_eq!(bins, expect, "histogram mismatch");
        let _ = rep;
        kr
    }
}

/// Snappy compression and decompression (§5.6).
pub mod snappy {
    use super::*;
    use udp_codecs::{snappy_compress, snappy_decompress};
    use udp_compilers::snappy::{
        frame_compressed, snappy_compress_to_udp, snappy_decompress_to_udp, MAX_BLOCK,
    };

    /// Compresses a block (≤ 64 KB), validating the stream round-trips
    /// through the CPU decompressor. Returns the report and the
    /// compression ratio (compressed / raw).
    pub fn run_compress(block: &[u8]) -> (UdpKernelReport, f64) {
        assert!(block.len() <= MAX_BLOCK);
        let img = assemble(&snappy_compress_to_udp(), 8);
        let staging = Staging {
            segments: vec![],
            regs: vec![(Reg::new(2), block.len() as u32)],
        };
        // Code (~2 KB) + the 2^11-slot hash table at 4 KB fit one bank.
        let (rep, kr) = run_duplicated("snappy-compress", &img, block, &staging, 1);
        let framed = frame_compressed(block.len(), &rep.lanes[0].output);
        assert_eq!(
            snappy_decompress(&framed).expect("valid stream"),
            block,
            "snappy compress mismatch"
        );
        let ratio = framed.len() as f64 / block.len().max(1) as f64;
        (kr, ratio)
    }

    /// Decompresses a CPU-compressed stream on the device.
    pub fn run_decompress(block: &[u8]) -> UdpKernelReport {
        let stream = snappy_compress(block);
        let img = assemble(&snappy_decompress_to_udp(), 8);
        let (rep, kr) = run_duplicated("snappy-decompress", &img, &stream, &Staging::default(), 1);
        assert_eq!(rep.lanes[0].output, block, "snappy decompress mismatch");
        kr
    }
}

/// JSON tokenization (a Table 1 parsing capability beyond the paper's
/// CSV evaluation).
pub mod json {
    use super::*;
    use udp_compilers::json::{baseline_framing, json_to_udp};

    /// Tokenizes NDJSON on the device, verifying the token framing
    /// against the CPU tokenizer.
    ///
    /// # Panics
    ///
    /// Panics if the UDP output disagrees with the baseline, or the
    /// input is not lexically valid (compat-mode) JSON.
    pub fn run(data: &[u8]) -> UdpKernelReport {
        let img = assemble(&json_to_udp(), 8);
        let (rep, kr) = run_duplicated("json-tokenize", &img, data, &Staging::default(), 1);
        assert_eq!(rep.lanes[0].output, baseline_framing(data), "json mismatch");
        kr
    }
}

/// XML tokenization (the third Table 1 parsing format; the PowerEN
/// comparison row).
pub mod xml {
    use super::*;
    use udp_compilers::xml::{baseline_framing, xml_to_udp};

    /// Tokenizes subset-XML on the device, verifying the token framing
    /// against the CPU tokenizer.
    ///
    /// # Panics
    ///
    /// Panics on a framing mismatch or invalid input.
    pub fn run(data: &[u8]) -> UdpKernelReport {
        let img = assemble(&xml_to_udp(), 8);
        let (rep, kr) = run_duplicated("xml-tokenize", &img, data, &Staging::default(), 1);
        assert_eq!(rep.lanes[0].output, baseline_framing(data), "xml mismatch");
        kr
    }
}

/// Bit-pack encoding (the DAX-Pack family of Table 1).
pub mod bitpack {
    use super::*;
    use udp_compilers::bitpack::{bitpack_decode_to_udp, bitpack_encode_to_udp};

    /// Packs byte-sized codes at `width` bits on the device and checks
    /// the stream against the CPU packer.
    pub fn run_encode(codes: &[u8], width: u8) -> UdpKernelReport {
        let img = assemble(&bitpack_encode_to_udp(width), 2);
        let (rep, kr) = run_duplicated("bitpack-encode", &img, codes, &Staging::default(), 1);
        let as_u32: Vec<u32> = codes.iter().map(|&c| u32::from(c)).collect();
        assert_eq!(
            rep.lanes[0].output,
            udp_codecs::bitpack_encode(&as_u32, width),
            "bitpack mismatch"
        );
        kr
    }

    /// Unpacks a `width`-bit stream on the device.
    pub fn run_decode(packed: &[u8], width: u8, count: usize) -> UdpKernelReport {
        let img = assemble(&bitpack_decode_to_udp(width), 2);
        let (rep, kr) = run_duplicated("bitpack-decode", &img, packed, &Staging::default(), 1);
        let expect = udp_codecs::bitpack_decode(packed, width, count).expect("enough bytes");
        let got: Vec<u32> = rep.lanes[0].output[..count]
            .iter()
            .map(|&b| u32::from(b))
            .collect();
        assert_eq!(got, expect, "bitunpack mismatch");
        kr
    }
}

/// Signal triggering (§5.7).
pub mod trigger {
    use super::*;
    use udp_codecs::TriggerFsm;
    use udp_compilers::trigger::trigger_to_udp;

    /// Localizes width-`width` pulses in a sample stream.
    pub fn run(width: u32, samples: &[u8]) -> UdpKernelReport {
        let fsm = TriggerFsm::new(64, 192, width);
        let img = assemble(&trigger_to_udp(&fsm), 8);
        let (rep, kr) = run_duplicated("trigger", &img, samples, &Staging::default(), 1);
        let got: Vec<usize> = rep.lanes[0]
            .reports
            .iter()
            .map(|&(_, p)| p as usize - 1)
            .collect();
        assert_eq!(got, fsm.run_reference(samples), "trigger mismatch");
        kr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_runner_reports_sane_metrics() {
        let data = udp_workloads::crimes_csv(8_000, 1);
        let r = csv::run(&data);
        assert_eq!(r.lanes, 64);
        assert!(r.lane_rate_mbps > 100.0, "{}", r.lane_rate_mbps);
        assert!((r.throughput_mbps / r.lane_rate_mbps - 64.0).abs() < 1.0);
        assert!(r.tput_per_watt() > r.throughput_mbps);
    }

    #[test]
    fn trigger_runner_hits_paper_rate_ballpark() {
        let (samples, _) = udp_workloads::pulsed_waveform(20_000, &[5], 30, 3);
        let r = trigger::run(5, &samples);
        // Paper: constant 1,055 MB/s. Our model: ~1 cycle/sample → ~1000.
        assert!(r.lane_rate_mbps > 800.0, "{}", r.lane_rate_mbps);
    }

    #[test]
    fn snappy_runner_round_trips() {
        let block = udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 12_000, 4);
        let (comp, ratio) = snappy::run_compress(&block);
        assert!(ratio < 1.0, "text should compress: {ratio}");
        assert!(comp.lane_rate_mbps > 10.0);
        let dec = snappy::run_decompress(&block);
        assert!(dec.lane_rate_mbps > comp.lane_rate_mbps);
    }

    #[test]
    fn dict_runner_verifies() {
        let vals: Vec<String> = (0..500).map(|i| format!("cat-{}", i % 17)).collect();
        let r = dict::run(&vals);
        assert!(r.lanes >= 16);
        let r2 = dict::run_rle(&vals);
        assert!(r2.lane_rate_mbps > 0.0);
    }

    #[test]
    fn histogram_runner_verifies() {
        let le = udp_workloads::fare_stream(3000, 5);
        let hist = udp_codecs::Histogram::uniform(0.0, 100.0, 4);
        let r = histogram::run(&le, &hist);
        assert!(r.lane_rate_mbps > 100.0, "{}", r.lane_rate_mbps);
    }

    #[test]
    fn huffman_runners_verify() {
        let data = udp_workloads::canterbury_like(udp_workloads::Entropy::Medium, 6_000, 6);
        let e = huffman::run_encode(&data);
        let d = huffman::run_decode(&data);
        assert!(e.lane_rate_mbps > 50.0, "{}", e.lane_rate_mbps);
        assert!(d.lane_rate_mbps > 50.0, "{}", d.lane_rate_mbps);
    }

    #[test]
    fn pattern_runners_verify() {
        let pats = udp_workloads::nids_literals(20, 7);
        let (trace, _) = udp_workloads::traffic_with_matches(&pats, 20_000, 800, 7);
        let a = patterns::run_adfa(&pats, &trace);
        assert!(a.lane_rate_mbps > 100.0);
        let regexes = udp_workloads::nids_regexes(6, 7);
        let refs: Vec<&str> = regexes.iter().map(String::as_str).collect();
        let d = patterns::run_dfa(&refs, &trace[..8000]);
        let n = patterns::run_nfa_model(&refs, &trace[..8000]);
        assert!(
            d.lane_rate_mbps > n.lane_rate_mbps,
            "DFA should outpace NFA"
        );
    }
}

//! Capability matrices: Table 1 (accelerator coverage) and Table 5
//! (UAP vs UDP features), as queryable data.

/// Algorithm families of Table 1's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// DEFLATE / Snappy / Xpress / LZF-class compression.
    Compression,
    /// RLE / Huffman / dictionary / bit-pack encodings.
    Encoding,
    /// CSV / JSON / XML parsing.
    Parsing,
    /// DFA / D2FA / NFA / counting-NFA pattern matching.
    PatternMatching,
    /// Fixed- and variable-size-bin histograms.
    Histogram,
}

/// One accelerator row of Table 1.
#[derive(Debug, Clone)]
pub struct AcceleratorRow {
    /// Accelerator name.
    pub name: &'static str,
    /// What it supports, with the paper's qualifier.
    pub coverage: &'static [(Capability, &'static str)],
}

/// Table 1, as published.
pub const TABLE1: &[AcceleratorRow] = &[
    AcceleratorRow {
        name: "UDP",
        coverage: &[
            (Capability::Compression, "all listed"),
            (Capability::Encoding, "all listed"),
            (Capability::Parsing, "CSV, JSON, XML"),
            (Capability::PatternMatching, "all listed"),
            (Capability::Histogram, "all listed"),
        ],
    },
    AcceleratorRow {
        name: "UAP",
        coverage: &[(Capability::PatternMatching, "all listed")],
    },
    AcceleratorRow {
        name: "Intel Chipset 89xx",
        coverage: &[(Capability::Compression, "DEFLATE")],
    },
    AcceleratorRow {
        name: "Microsoft Xpress (FPGA)",
        coverage: &[(Capability::Compression, "Xpress")],
    },
    AcceleratorRow {
        name: "Oracle Sparc M7 DAX",
        coverage: &[(Capability::Encoding, "RLE, Huffman, Bit-pack, OZIP")],
    },
    AcceleratorRow {
        name: "IBM PowerEN",
        coverage: &[
            (Capability::Parsing, "XML"),
            (Capability::PatternMatching, "DFA, D2FA"),
            (Capability::Compression, "DEFLATE"),
        ],
    },
    AcceleratorRow {
        name: "Cadence Xtensa TIE Histogram",
        coverage: &[(Capability::Histogram, "fixed-size bin")],
    },
    AcceleratorRow {
        name: "ETH Histogram (FPGA)",
        coverage: &[(Capability::Histogram, "all listed")],
    },
];

/// One feature row of Table 5 (UAP vs UDP).
#[derive(Debug, Clone)]
pub struct FeatureRow {
    /// Feature dimension.
    pub dimension: &'static str,
    /// UAP's design.
    pub uap: &'static str,
    /// UDP's design.
    pub udp: &'static str,
}

/// Table 5, as published.
pub const TABLE5: &[FeatureRow] = &[
    FeatureRow {
        dimension: "Transitions",
        uap: "stream only",
        udp: "control and stream-driven",
    },
    FeatureRow {
        dimension: "Symbol",
        uap: "8-bit fixed",
        udp: "symbol size register (1-8, 32 bits)",
    },
    FeatureRow {
        dimension: "Dispatch Source",
        uap: "stream buffer only",
        udp: "stream buffer and data register",
    },
    FeatureRow {
        dimension: "Addressing",
        uap: "single bank, fixed memory per lane",
        udp: "multi-bank addressing; match data parallelism to memory needs",
    },
    FeatureRow {
        dimension: "Action",
        uap: "logic and bit-field ops",
        udp: "rich, flexible arithmetic and memory ops",
    },
];

/// Whether a named accelerator covers a capability at all.
pub fn covers(name: &str, cap: Capability) -> bool {
    TABLE1
        .iter()
        .find(|r| r.name == name)
        .is_some_and(|r| r.coverage.iter().any(|(c, _)| *c == cap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_covers_everything() {
        for cap in [
            Capability::Compression,
            Capability::Encoding,
            Capability::Parsing,
            Capability::PatternMatching,
            Capability::Histogram,
        ] {
            assert!(covers("UDP", cap), "{cap:?}");
        }
    }

    #[test]
    fn specialized_accelerators_are_narrow() {
        assert!(covers("Intel Chipset 89xx", Capability::Compression));
        assert!(!covers("Intel Chipset 89xx", Capability::Parsing));
        assert!(!covers("UAP", Capability::Compression));
    }

    #[test]
    fn table5_has_five_dimensions() {
        assert_eq!(TABLE5.len(), 5);
    }
}

//! # udp — the Unstructured Data Processor
//!
//! A from-scratch Rust reproduction of *"UDP: A Programmable Accelerator
//! for Extract-Transform-Load Workloads and More"* (Fang, Zou, Elmore,
//! Chien, MICRO-50, 2017): a software-programmable accelerator built
//! around multi-way dispatch, variable-size symbols, flexible dispatch
//! sources, and flexible lane↔memory addressing.
//!
//! This crate is the front door. It re-exports the layered stack and
//! adds the pieces a user actually reaches for:
//!
//! * [`kernels`] — one turnkey runner per paper kernel (§5): compile the
//!   translator output, stage data, run the 64-lane device, verify
//!   against the CPU baseline, and report rate / throughput /
//!   throughput-per-watt exactly as the paper's figures do.
//! * [`coverage`] — the capability matrices of Table 1 and Table 5.
//! * [`comparison`] — the specialized-accelerator constants of Table 4.
//!
//! The layers underneath (each its own crate):
//!
//! | crate | role |
//! |-------|------|
//! | `udp-isa` | transition/action word encodings (Figure 6) |
//! | `udp-asm` | assembler + EffCLiP layout (§4.3) |
//! | `udp-sim` | cycle-accurate lane/device simulator + power model (§4.4, §6) |
//! | `udp-automata` | regex → NFA → DFA/ADFA substrate |
//! | `udp-codecs` | CPU baselines (libcsv/libhuffman/Snappy/Parquet-dict/GSL/trigger) |
//! | `udp-compilers` | domain translators (Figure 12) |
//!
//! ## Quickstart
//!
//! ```
//! use udp::kernels::trigger;
//!
//! // Localize width-4 pulses in a synthetic scope trace on one lane.
//! let (samples, _) = udp_workloads::pulsed_waveform(20_000, &[4], 30, 7);
//! let report = trigger::run(4, &samples);
//! assert!(report.lane_rate_mbps > 500.0); // ~1 cycle/sample at 1 GHz
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod coverage;
pub mod kernels;

pub use kernels::UdpKernelReport;
pub use udp_asm::{AsmError, LayoutOptions, ProgramBuilder, ProgramImage};
pub use udp_isa::{Action, Opcode, Reg, TransitionWord};
pub use udp_sim::{Lane, LaneConfig, LaneReport, PowerModel, Udp, UdpRunOptions};

//! `udp-cli` — assemble, inspect, and run UDP assembly from the shell.
//!
//! ```text
//! udp-cli asm    <prog.uasm>                 # assemble, print layout stats
//! udp-cli disasm <prog.uasm>                 # assemble + disassemble
//! udp-cli run    <prog.uasm> <input-file>    # run one lane over a file
//! ```

use std::process::ExitCode;
use udp::{LayoutOptions, ProgramImage};
use udp_sim::{Lane, LaneConfig};

fn assemble(path: &str) -> Result<ProgramImage, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let builder = udp_asm::parse_asm(&text).map_err(|e| format!("{path}: {e}"))?;
    // Grow the window until the program fits the device.
    let mut banks = 1;
    loop {
        match builder.assemble(&LayoutOptions::with_banks(banks)) {
            Ok(img) => return Ok(img),
            Err(_) if banks < 64 => banks *= 2,
            Err(e) => return Err(format!("{path}: {e}")),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: udp-cli <asm|disasm|run> <prog.uasm> [input-file]";
    let result = match args.as_slice() {
        [cmd, prog] if cmd == "asm" => assemble(prog).map(|img| {
            let s = img.stats;
            println!(
                "states {}, transitions {}, actions {}, span {} words ({} bytes), density {:.0}%",
                s.n_states,
                s.n_transition_words,
                s.n_action_words,
                s.span_words,
                s.code_bytes(),
                s.density() * 100.0
            );
            println!(
                "entry {:#06x} ({:?}), max parallelism {}",
                img.entry_base,
                img.entry_kind,
                s.max_parallelism(udp_isa::mem::TOTAL_WORDS)
            );
        }),
        [cmd, prog] if cmd == "disasm" => assemble(prog).map(|img| {
            print!("{}", udp_asm::disassemble(&img));
        }),
        [cmd, prog, input] if cmd == "run" => assemble(prog).and_then(|img| {
            let data = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
            let rep = Lane::run_program(&img, &data, &LaneConfig::default());
            eprintln!(
                "status {:?}; {} bytes in {} cycles ({:.1} MB/s at 1 GHz), {} dispatches, {} misses",
                rep.status,
                rep.bytes_consumed,
                rep.cycles,
                rep.rate_mbps(1.0),
                rep.dispatches,
                rep.fallback_misses
            );
            if !rep.reports.is_empty() {
                eprintln!("reports: {:?}", &rep.reports[..rep.reports.len().min(20)]);
            }
            use std::io::Write as _;
            std::io::stdout()
                .write_all(&rep.output)
                .map_err(|e| e.to_string())?;
            Ok(())
        }),
        _ => Err(usage.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(m) => {
            eprintln!("{m}");
            ExitCode::FAILURE
        }
    }
}

//! Entropy-controlled text generation (Canterbury / BDBench stand-ins).
//!
//! Huffman and Snappy throughput depend on symbol entropy and on LZ
//! match structure. The generator mixes a Zipf-weighted word vocabulary
//! (low entropy, long repeats) with uniform random bytes (high entropy)
//! in a tunable ratio.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Entropy regimes matching the Canterbury corpus spread (the corpus
/// files "range from 3KB to 1MB with different entropy", §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entropy {
    /// Highly repetitive (like `ptt5` / `kennedy.xls`): ~2 bits/byte.
    Low,
    /// English-like (like `alice29.txt`): ~4.5 bits/byte.
    Medium,
    /// Near-random (like compressed or encrypted payloads): ~8 bits/byte.
    High,
}

const VOCAB: &[&str] = &[
    "the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he", "was", "for", "on",
    "are", "as", "with", "his", "they", "I", "at", "be", "this", "have", "from", "or", "one",
    "had", "by", "word", "but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
    "there", "use", "an", "each", "which", "she", "do", "how", "their", "if", "will", "up",
    "other", "about", "out", "many", "then", "them", "these", "so", "some", "her", "would", "make",
    "like", "him", "into", "time", "has", "look", "two", "more", "write", "go", "see", "number",
    "no", "way", "could", "people", "my", "than", "first", "water", "been", "call", "who", "oil",
    "its", "now", "find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
];

/// Generates `size` bytes at the requested entropy, seeded.
pub fn canterbury_like(entropy: Entropy, size: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut out = Vec::with_capacity(size + 16);
    match entropy {
        Entropy::Low => {
            // A few phrases repeated with occasional mutation.
            let phrases: Vec<String> = (0..4)
                .map(|i| {
                    (0..8)
                        .map(|_| VOCAB[rng.gen_range(0..8 + i * 4)])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            while out.len() < size {
                let p = &phrases[zipf(&mut rng, 4)];
                out.extend_from_slice(p.as_bytes());
                out.push(if rng.gen_ratio(1, 20) { b'.' } else { b' ' });
            }
        }
        Entropy::Medium => {
            while out.len() < size {
                let w = VOCAB[zipf(&mut rng, VOCAB.len())];
                out.extend_from_slice(w.as_bytes());
                out.push(b' ');
                if rng.gen_ratio(1, 12) {
                    out.pop();
                    out.extend_from_slice(b".\n");
                }
            }
        }
        Entropy::High => {
            while out.len() < size {
                out.push(rng.gen());
            }
        }
    }
    out.truncate(size);
    out
}

/// A BDBench-like HDFS block: `kind` 0 = crawl (HTML-ish, medium
/// entropy, high byte diversity), 1 = rank (URL + numbers, low
/// cardinality), 2 = user-visits (log records). Sizes are scaled down
/// ×8 from the paper's 64/22/64 MB for tractable runs.
pub fn bdbench_block(kind: usize, size: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x00BD_BE4C);
    let mut out = Vec::with_capacity(size + 64);
    match kind % 3 {
        0 => {
            // crawl: markup-heavy documents. Large Huffman tree (byte-
            // diverse) — the case that forces 2 banks/lane in §5.2.
            while out.len() < size {
                out.extend_from_slice(b"<div class=\"");
                for _ in 0..rng.gen_range(3..10) {
                    out.push(rng.gen_range(b'a'..=b'z'));
                }
                out.extend_from_slice(b"\"><p>");
                for _ in 0..rng.gen_range(5..25) {
                    let w = VOCAB[zipf(&mut rng, VOCAB.len())];
                    out.extend_from_slice(w.as_bytes());
                    out.push(b' ');
                }
                // Sprinkle high bytes so all 256 symbols get codes.
                if rng.gen_ratio(1, 3) {
                    out.push(rng.gen());
                }
                out.extend_from_slice(b"</p></div>\n");
            }
        }
        1 => {
            while out.len() < size {
                let rank = rng.gen_range(1..100_000u32);
                let dur = rng.gen_range(1..500u32);
                out.extend_from_slice(
                    format!("{rank},http://site{}.example/page{}\n", rank % 971, dur).as_bytes(),
                );
            }
        }
        _ => {
            while out.len() < size {
                let ip = format!(
                    "{}.{}.{}.{}",
                    rng.gen_range(1..255),
                    rng.gen_range(0..255),
                    rng.gen_range(0..255),
                    rng.gen_range(1..255)
                );
                out.extend_from_slice(
                    format!(
                        "{ip},1997-{:02}-{:02},0.{:05},page{}\n",
                        rng.gen_range(1..13),
                        rng.gen_range(1..29),
                        rng.gen_range(0..99999),
                        rng.gen_range(0..5000)
                    )
                    .as_bytes(),
                );
            }
        }
    }
    out.truncate(size);
    out
}

/// Zipf-ish index in `0..n`: rank 0 most likely.
fn zipf(rng: &mut SmallRng, n: usize) -> usize {
    // Inverse-CDF approximation for s≈1: index ∝ exp(u · ln n) − 1.
    let u: f64 = rng.gen();
    let idx = ((n as f64 + 1.0).powf(u) - 1.0) as usize;
    idx.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shannon_bits(data: &[u8]) -> f64 {
        let mut f = [0u64; 256];
        for &b in data {
            f[b as usize] += 1;
        }
        let n = data.len() as f64;
        f.iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    #[test]
    fn entropy_regimes_are_ordered() {
        let lo = shannon_bits(&canterbury_like(Entropy::Low, 50_000, 1));
        let med = shannon_bits(&canterbury_like(Entropy::Medium, 50_000, 1));
        let hi = shannon_bits(&canterbury_like(Entropy::High, 50_000, 1));
        assert!(lo < med && med < hi, "{lo} < {med} < {hi}");
        assert!(hi > 7.9);
        assert!(lo < 4.5);
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(
            canterbury_like(Entropy::Medium, 1000, 7),
            canterbury_like(Entropy::Medium, 1000, 7)
        );
        assert_ne!(
            canterbury_like(Entropy::Medium, 1000, 7),
            canterbury_like(Entropy::Medium, 1000, 8)
        );
    }

    #[test]
    fn exact_sizes() {
        for size in [0, 1, 3000, 65_536] {
            assert_eq!(canterbury_like(Entropy::Low, size, 0).len(), size);
            assert_eq!(bdbench_block(0, size, 0).len(), size);
        }
    }

    #[test]
    fn crawl_block_is_byte_diverse() {
        let data = bdbench_block(0, 200_000, 3);
        let distinct = {
            let mut seen = [false; 256];
            for &b in &data {
                seen[b as usize] = true;
            }
            seen.iter().filter(|&&s| s).count()
        };
        assert!(
            distinct > 200,
            "crawl should exercise most byte values: {distinct}"
        );
    }
}

//! # udp-workloads — deterministic synthetic datasets
//!
//! The paper evaluates on Chicago Crimes, NYC Taxi, Food Inspection,
//! the Canterbury Corpus, Berkeley Big Data blocks, the IBM PowerEN
//! NIDS pattern set, and a proprietary Keysight scope trace (Table 2).
//! None of those ship with this repository, so this crate generates
//! synthetic equivalents that reproduce the statistics the kernels are
//! actually sensitive to (DESIGN.md §4 documents each substitution):
//!
//! * [`csvgen`] — CSV tables with matched schemas, field-length
//!   distributions, quote/escape density, and attribute cardinalities;
//! * [`text`] — entropy-controlled text for Huffman/Snappy;
//! * [`patterns`] — NIDS-like literal and regex rule sets plus traffic
//!   with planted matches;
//! * [`waveform`] — pulsed scope traces;
//! * [`values`] — IEEE-754 attribute streams (lat/lon clusters, skewed
//!   fares).
//!
//! Everything is seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csvgen;
pub mod jsongen;
pub mod patterns;
pub mod text;
pub mod values;
pub mod waveform;
pub mod xmlgen;

pub use csvgen::{crimes_csv, food_inspection_csv, lineitem_csv, taxi_csv};
pub use jsongen::ndjson_events;
pub use patterns::{nids_literals, nids_regexes, traffic_with_matches};
pub use text::{bdbench_block, canterbury_like, Entropy};
pub use values::{fare_stream, latitude_stream, longitude_stream};
pub use waveform::pulsed_waveform;
pub use xmlgen::xml_records;

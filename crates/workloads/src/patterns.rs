//! NIDS-like pattern sets (the PowerEN dataset stand-in, §4.1, §5.3).
//!
//! Two families match the paper's "simple" (string matching) and
//! "complex" (regular expression) workloads: literal byte signatures of
//! realistic lengths, and regexes built from classes, alternation, and
//! bounded repetition — the shapes in Snort/PowerEN rule sets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SHELL_WORDS: &[&str] = &[
    "GET /",
    "POST /",
    "cmd.exe",
    "/bin/sh",
    "passwd",
    "SELECT",
    "UNION",
    "admin.php",
    "wget http",
    "eval(",
    "base64_",
    "powershell",
    "xp_cmdshell",
    "etc/shadow",
    "0wned",
    "\\x90\\x90",
    "login.cgi",
    "%c0%af",
    "Authorization:",
    "Content-Length:",
];

/// `n` literal signatures, 4–20 bytes, mixing protocol keywords, paths,
/// and binary shellcode-ish prefixes.
pub fn nids_literals(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51D5);
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while out.len() < n {
        let mut sig: Vec<u8> = Vec::new();
        match rng.gen_range(0..3) {
            0 => {
                sig.extend_from_slice(SHELL_WORDS[rng.gen_range(0..SHELL_WORDS.len())].as_bytes());
                for _ in 0..rng.gen_range(0..8) {
                    sig.push(rng.gen_range(b'a'..=b'z'));
                }
            }
            1 => {
                // Binary signature.
                for _ in 0..rng.gen_range(4..12) {
                    sig.push(rng.gen());
                }
            }
            _ => {
                sig.extend_from_slice(b"/");
                for _ in 0..rng.gen_range(4..16) {
                    sig.push(*b"abcdefghij.-_/".get(rng.gen_range(0..14)).expect("idx"));
                }
            }
        }
        sig.truncate(20);
        if sig.len() >= 4 && seen.insert(sig.clone()) {
            out.push(sig);
        }
    }
    out
}

/// `n` complex regex patterns (as strings parseable by
/// `udp_automata::Regex`).
pub fn nids_regexes(n: usize, seed: u64) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x2E6E);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let shape = rng.gen_range(0..4);
        let kw = |rng: &mut SmallRng| {
            SHELL_WORDS[rng.gen_range(0..SHELL_WORDS.len())]
                .replace(['\\', '(', ')', '[', ']', '%', '{', '}'], "x")
        };
        let p = match shape {
            0 => format!("{}[a-z0-9]{{2,6}}{}", kw(&mut rng), kw(&mut rng)),
            1 => format!("({}|{})\\d+", kw(&mut rng), kw(&mut rng)),
            2 => format!("{}\\s?=\\s?[\"']?[a-zA-Z0-9_]+", kw(&mut rng)),
            _ => format!("{}(\\.\\w+)+/", kw(&mut rng)),
        };
        out.push(p);
    }
    out
}

/// A traffic trace of `size` bytes with `plant_every`-byte spaced planted
/// occurrences of the given patterns (round-robin), over an HTTP-ish
/// background. Returns `(trace, planted_count)`.
pub fn traffic_with_matches(
    patterns: &[Vec<u8>],
    size: usize,
    plant_every: usize,
    seed: u64,
) -> (Vec<u8>, usize) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7F4C);
    let mut out = Vec::with_capacity(size + 64);
    let mut planted = 0usize;
    let mut next_plant = plant_every.max(8);
    while out.len() < size {
        if !patterns.is_empty() && out.len() >= next_plant {
            out.extend_from_slice(&patterns[planted % patterns.len()]);
            planted += 1;
            next_plant += plant_every.max(8);
        }
        // Background: header-ish lines with random payloads.
        out.extend_from_slice(b"Host: srv");
        for _ in 0..rng.gen_range(2..9) {
            out.push(rng.gen_range(b'a'..=b'z'));
        }
        out.extend_from_slice(b".example\r\n");
        for _ in 0..rng.gen_range(8..40) {
            out.push(rng.gen_range(32..127));
        }
        out.extend_from_slice(b"\r\n");
    }
    out.truncate(size);
    (out, planted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_have_realistic_lengths() {
        let pats = nids_literals(100, 1);
        assert_eq!(pats.len(), 100);
        assert!(pats.iter().all(|p| (4..=20).contains(&p.len())));
        // All distinct.
        let set: std::collections::HashSet<_> = pats.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn regexes_parse() {
        for p in nids_regexes(50, 2) {
            udp_automata::Regex::parse(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }

    #[test]
    fn planted_matches_are_found() {
        let pats = nids_literals(10, 3);
        let (trace, planted) = traffic_with_matches(&pats, 50_000, 500, 3);
        assert!(planted > 50);
        let adfa = udp_automata::Adfa::build(&pats);
        let found = adfa.find_all(&trace);
        assert!(
            found.len() >= planted * 9 / 10,
            "found {} of {planted} planted",
            found.len()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(nids_literals(20, 5), nids_literals(20, 5));
        assert_eq!(nids_regexes(20, 5), nids_regexes(20, 5));
    }
}

//! CSV table generators with the paper datasets' shapes (§4.1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PRIMARY_TYPES: &[&str] = &[
    "THEFT",
    "BATTERY",
    "CRIMINAL DAMAGE",
    "NARCOTICS",
    "ASSAULT",
    "BURGLARY",
    "MOTOR VEHICLE THEFT",
    "ROBBERY",
    "DECEPTIVE PRACTICE",
    "CRIMINAL TRESPASS",
];

const LOCATION_DESCRIPTIONS: &[&str] = &[
    "STREET",
    "RESIDENCE",
    "APARTMENT",
    "SIDEWALK",
    "OTHER",
    "PARKING LOT/GARAGE(NON.RESID.)",
    "ALLEY",
    "SCHOOL, PUBLIC, BUILDING",
    "RESIDENCE-GARAGE",
    "SMALL RETAIL STORE",
    "RESTAURANT",
    "VEHICLE NON-COMMERCIAL",
    "GROCERY FOOD STORE",
    "DEPARTMENT STORE",
    "GAS STATION",
    "RESIDENTIAL YARD (FRONT/BACK)",
    "PARK PROPERTY",
    "CHA PARKING LOT/GROUNDS",
    "BAR OR TAVERN",
    "DRUG STORE",
];

/// Crimes-like rows: the dictionary-encoding attributes (Arrest,
/// District, Location Description) have realistic low cardinalities.
///
/// Returns CSV bytes of roughly `target_bytes`.
pub fn crimes_csv(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC21);
    let mut out = Vec::with_capacity(target_bytes + 256);
    out.extend_from_slice(
        b"ID,Case Number,Date,Block,IUCR,Primary Type,Location Description,Arrest,Domestic,District,Latitude,Longitude\n",
    );
    let mut id = 10_000_000u64;
    while out.len() < target_bytes {
        id += rng.gen_range(1..5);
        let lat = 41.6 + rng.gen::<f64>() * 0.4;
        let lon = -87.9 + rng.gen::<f64>() * 0.4;
        let loc = LOCATION_DESCRIPTIONS[zipf(&mut rng, LOCATION_DESCRIPTIONS.len())];
        let loc = if loc.contains(',') {
            format!("\"{loc}\"")
        } else {
            loc.to_string()
        };
        let row = format!(
            "{id},HZ{:06},{:02}/{:02}/20{:02} {:02}:{:02}:{:02} PM,0{:02}XX N {} ST,{:04},{},{},{},{},{:03},{:.9},{:.9}\n",
            rng.gen_range(100_000..999_999u32),
            rng.gen_range(1..13u8),
            rng.gen_range(1..29u8),
            rng.gen_range(10..24u8),
            rng.gen_range(1..13u8),
            rng.gen_range(0..60u8),
            rng.gen_range(0..60u8),
            rng.gen_range(1..100u8),
            ["STATE", "CLARK", "MICHIGAN", "HALSTED", "WESTERN"][rng.gen_range(0..5)],
            rng.gen_range(110..2900u16),
            PRIMARY_TYPES[zipf(&mut rng, PRIMARY_TYPES.len())],
            loc,
            if rng.gen_ratio(1, 4) { "true" } else { "false" },
            if rng.gen_ratio(1, 8) { "true" } else { "false" },
            rng.gen_range(1..26u8),
            lat,
            lon,
        );
        out.extend_from_slice(row.as_bytes());
    }
    out
}

/// NYC-taxi-like trip rows.
pub fn taxi_csv(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7A_11);
    let mut out = Vec::with_capacity(target_bytes + 256);
    out.extend_from_slice(
        b"medallion,hack_license,pickup_datetime,dropoff_datetime,passenger_count,trip_distance,fare_amount,tip_amount,total_amount\n",
    );
    while out.len() < target_bytes {
        let fare = fare_sample(&mut rng);
        let tip = fare * rng.gen_range(0.0..0.3);
        let row = format!(
            "{:032X},{:032X},2013-{:02}-{:02} {:02}:{:02}:{:02},2013-{:02}-{:02} {:02}:{:02}:{:02},{},{:.2},{:.2},{:.2},{:.2}\n",
            rng.gen::<u128>(),
            rng.gen::<u128>(),
            rng.gen_range(1..13u8),
            rng.gen_range(1..29u8),
            rng.gen_range(0..24u8),
            rng.gen_range(0..60u8),
            rng.gen_range(0..60u8),
            rng.gen_range(1..13u8),
            rng.gen_range(1..29u8),
            rng.gen_range(0..24u8),
            rng.gen_range(0..60u8),
            rng.gen_range(0..60u8),
            rng.gen_range(1..6u8),
            rng.gen_range(0.3..30.0f64),
            fare,
            tip,
            fare + tip,
        );
        out.extend_from_slice(row.as_bytes());
    }
    out
}

/// Food-Inspection-like rows: "multiple fields contain escape quotes,
/// including long comments and location coordinates" (§4.1) — the
/// quoting-stress CSV case.
pub fn food_inspection_csv(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00D);
    let mut out = Vec::with_capacity(target_bytes + 512);
    out.extend_from_slice(
        b"Inspection ID,DBA Name,AKA Name,Facility Type,Risk,Address,Results,Violations,Location\n",
    );
    let violations = [
        "OBSERVED TORN DOOR GASKET ON DOOR OF 'COOLER'",
        "MUST PROVIDE THERMOMETERS IN ALL COOLERS",
        "INSTRUCTED TO CLEAN INTERIOR OF ICE MACHINE",
        "ALL FOOD NOT STORED IN THE ORIGINAL CONTAINER SHALL BE STORED IN PROPERLY LABELED CONTAINERS",
    ];
    while out.len() < target_bytes {
        let n_viol = rng.gen_range(1..5);
        let mut comment = String::new();
        for k in 0..n_viol {
            if k > 0 {
                comment.push_str(" | ");
            }
            comment.push_str(&format!(
                "{}. {} - Comments: \"{}\" noted by inspector",
                rng.gen_range(1..70),
                violations[rng.gen_range(0..violations.len())],
                violations[rng.gen_range(0..violations.len())]
            ));
        }
        let lat = 41.6 + rng.gen::<f64>() * 0.4;
        let lon = -87.9 + rng.gen::<f64>() * 0.4;
        let row = format!(
            "{},\"{} \"\"THE\"\" GRILL #{}\",\"CAFE {}\",Restaurant,Risk {} (High),{} W MADISON ST,{},\"{}\",\"({:.10}, {:.10})\"\n",
            rng.gen_range(1_000_000..2_000_000u32),
            ["JOE'S", "MARIA'S", "THE CORNER", "GOLDEN"][rng.gen_range(0..4)],
            rng.gen_range(1..40u8),
            rng.gen_range(1..999u16),
            rng.gen_range(1..4u8),
            rng.gen_range(1..9999u16),
            ["Pass", "Fail", "Pass w/ Conditions"][rng.gen_range(0..3)],
            comment.replace('"', "\"\""),
            lat,
            lon,
        );
        out.extend_from_slice(row.as_bytes());
    }
    out
}

/// TPC-H-lineitem-like rows for the Figure 1 ETL experiment.
pub fn lineitem_csv(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x11E1);
    let mut out = Vec::with_capacity(target_bytes + 256);
    let comments = [
        "carefully final deposits",
        "quickly ironic packages",
        "slyly regular accounts",
        "furiously even theodolites",
    ];
    let mut orderkey = 1u64;
    while out.len() < target_bytes {
        orderkey += rng.gen_range(1..4);
        for line in 1..=rng.gen_range(1..7) {
            let qty = rng.gen_range(1..51u8);
            let price = rng.gen_range(900.0..105_000.0f64);
            let row = format!(
                "{orderkey}|{}|{}|{line}|{qty}|{price:.2}|0.{:02}|0.0{}|{}|{}|19{:02}-{:02}-{:02}|19{:02}-{:02}-{:02}|19{:02}-{:02}-{:02}|DELIVER IN PERSON|{}|{}|\n",
                rng.gen_range(1..200_001u32),
                rng.gen_range(1..10_001u32),
                rng.gen_range(0..11u8),
                rng.gen_range(0..9u8),
                ["N", "R", "A"][rng.gen_range(0..3)],
                ["O", "F"][rng.gen_range(0..2)],
                rng.gen_range(92..99u8),
                rng.gen_range(1..13u8),
                rng.gen_range(1..29u8),
                rng.gen_range(92..99u8),
                rng.gen_range(1..13u8),
                rng.gen_range(1..29u8),
                rng.gen_range(92..99u8),
                rng.gen_range(1..13u8),
                rng.gen_range(1..29u8),
                ["TRUCK", "MAIL", "SHIP", "RAIL", "AIR"][rng.gen_range(0..5)],
                comments[rng.gen_range(0..comments.len())],
            );
            out.extend_from_slice(row.as_bytes());
            if out.len() >= target_bytes {
                break;
            }
        }
    }
    out
}

fn fare_sample(rng: &mut SmallRng) -> f64 {
    // Skewed fares: mostly short trips, a heavy tail.
    let base: f64 = rng.gen_range(2.5..15.0);
    if rng.gen_ratio(1, 10) {
        base * rng.gen_range(2.0..6.0)
    } else {
        base
    }
}

fn zipf(rng: &mut SmallRng, n: usize) -> usize {
    let u: f64 = rng.gen();
    let idx = ((n as f64 + 1.0).powf(u) - 1.0) as usize;
    idx.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_codecs::CsvParser;

    #[test]
    fn crimes_parses_with_consistent_arity() {
        let data = crimes_csv(40_000, 1);
        let rows = CsvParser::new().parse(&data);
        assert!(rows.len() > 50);
        let arity = rows[0].len();
        assert_eq!(arity, 12);
        assert!(rows.iter().all(|r| r.len() == arity));
    }

    #[test]
    fn food_inspection_has_escaped_quotes() {
        let data = food_inspection_csv(30_000, 2);
        assert!(
            data.windows(2).any(|w| w == b"\"\""),
            "needs escaped quotes"
        );
        let rows = CsvParser::new().parse(&data);
        assert!(
            rows.iter().all(|r| r.len() == 9),
            "quoting must not break arity"
        );
    }

    #[test]
    fn taxi_and_lineitem_generate() {
        let t = taxi_csv(20_000, 3);
        assert!(t.len() >= 20_000);
        let l = lineitem_csv(20_000, 3);
        assert!(l.len() >= 20_000);
        // lineitem uses '|' delimiters.
        let rows = CsvParser::new().with_delimiter(b'|').parse(&l[..5000]);
        assert!(
            rows.iter().take(5).all(|r| r.len() == 17),
            "{:?}",
            rows[0].len()
        );
    }

    #[test]
    fn low_cardinality_dictionary_attributes() {
        let data = crimes_csv(100_000, 4);
        let rows = CsvParser::new().parse(&data);
        let mut locs: Vec<Vec<u8>> = rows.iter().skip(1).map(|r| r[6].clone()).collect();
        locs.sort();
        locs.dedup();
        assert!(
            locs.len() <= LOCATION_DESCRIPTIONS.len(),
            "location description cardinality: {}",
            locs.len()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(crimes_csv(5000, 9), crimes_csv(5000, 9));
        assert_ne!(crimes_csv(5000, 9), crimes_csv(5000, 10));
    }
}

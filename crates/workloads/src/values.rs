//! IEEE-754 attribute streams for the histogram kernel (§4.1, §5.5).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Chicago-latitude-like values: clustered around 41.6–42.0 with a few
/// null-island zeros, as little-endian `f32` bytes.
pub fn latitude_stream(n_values: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1A7);
    stream(n_values, |_| {
        if rng.gen_ratio(1, 200) {
            0.0
        } else {
            41.6 + gaussianish(&mut rng) * 0.4
        }
    })
}

/// Chicago-longitude-like values around −87.9…−87.5.
pub fn longitude_stream(n_values: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x10F);
    stream(n_values, |_| {
        if rng.gen_ratio(1, 200) {
            0.0
        } else {
            -87.9 + gaussianish(&mut rng) * 0.4
        }
    })
}

/// Taxi-fare-like values: short-trip mass plus a heavy tail.
pub fn fare_stream(n_values: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA4E);
    stream(n_values, |_| {
        let base = 2.5 + rng.gen::<f32>() * 12.5;
        if rng.gen_ratio(1, 10) {
            base * (2.0 + rng.gen::<f32>() * 4.0)
        } else {
            base
        }
    })
}

/// Decodes a little-endian `f32` stream back to values (test helper).
pub fn decode_f32_stream(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn gaussianish(rng: &mut SmallRng) -> f32 {
    // Irwin–Hall(4) ≈ normal on [0,1].
    let s: f32 = (0..4).map(|_| rng.gen::<f32>()).sum();
    (s / 4.0).clamp(0.0, 1.0)
}

fn stream<F: FnMut(usize) -> f32>(n: usize, mut f: F) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 4);
    for i in 0..n {
        out.extend_from_slice(&f(i).to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latitudes_are_in_chicago() {
        let vals = decode_f32_stream(&latitude_stream(1000, 1));
        assert_eq!(vals.len(), 1000);
        let in_range = vals.iter().filter(|&&v| (41.6..=42.0).contains(&v)).count();
        assert!(in_range > 950);
    }

    #[test]
    fn longitudes_are_negative() {
        let vals = decode_f32_stream(&longitude_stream(500, 2));
        assert!(vals.iter().filter(|&&v| v < -87.0).count() > 450);
    }

    #[test]
    fn fares_are_skewed() {
        let vals = decode_f32_stream(&fare_stream(5000, 3));
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        let above = vals.iter().filter(|&&v| v > mean).count();
        // Heavy tail: fewer than half the values exceed the mean.
        assert!(above < vals.len() / 2, "above-mean = {above}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(fare_stream(100, 4), fare_stream(100, 4));
        assert_ne!(fare_stream(100, 4), fare_stream(100, 5));
    }
}

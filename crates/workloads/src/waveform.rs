//! Pulsed-waveform traces (the Keysight scope-trace stand-in, §5.7).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates `n_samples` 8-bit samples: a noisy low baseline with pulses
/// of width drawn from `widths`, spaced `gap`±jitter apart. Returns
/// `(samples, positions_of_falling_edges_by_width)` where entry `i`
/// lists the falling-edge sample indexes of pulses with `widths[i]`.
pub fn pulsed_waveform(
    n_samples: usize,
    widths: &[u32],
    gap: usize,
    seed: u64,
) -> (Vec<u8>, Vec<Vec<usize>>) {
    assert!(!widths.is_empty() && gap >= 4);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5C0B);
    let mut samples = Vec::with_capacity(n_samples);
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); widths.len()];
    let mut k = 0usize;
    while samples.len() < n_samples {
        // Baseline low run with noise.
        let low_run = gap / 2 + rng.gen_range(0..gap / 2 + 1);
        for _ in 0..low_run {
            samples.push(rng.gen_range(0..40));
        }
        // One pulse.
        let wi = k % widths.len();
        let w = widths[wi] as usize;
        k += 1;
        for _ in 0..w {
            samples.push(rng.gen_range(215..=255));
        }
        if samples.len() < n_samples {
            edges[wi].push(samples.len());
            samples.push(rng.gen_range(0..40)); // falling-edge sample
        }
    }
    samples.truncate(n_samples);
    for e in edges.iter_mut() {
        e.retain(|&p| p < n_samples);
    }
    (samples, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_codecs::TriggerFsm;

    #[test]
    fn planted_pulses_are_detected() {
        let widths = [3u32, 5];
        let (samples, edges) = pulsed_waveform(20_000, &widths, 20, 1);
        for (i, &w) in widths.iter().enumerate() {
            let fsm = TriggerFsm::new(64, 192, w);
            let found = fsm.run_reference(&samples);
            assert_eq!(found, edges[i], "width {w}");
        }
    }

    #[test]
    fn deterministic_and_sized() {
        let (a, _) = pulsed_waveform(5000, &[4], 30, 7);
        let (b, _) = pulsed_waveform(5000, &[4], 30, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5000);
    }
}

//! NDJSON event-record generation (the JSON-parsing workload).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const USERS: &[&str] = &[
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi", "ivan", "judy",
];
const TAGS: &[&str] = &[
    "etl", "udp", "parser", "bigdata", "stream", "query", "nids", "scope", "column",
];
const NOTES: &[&str] = &[
    "loaded without errors",
    "field contains a \\\"quoted\\\" phrase",
    "path C:\\\\data\\\\in",
    "newline\\nencoded",
    "tab\\tseparated",
    "unicode snow\\u2603man",
];

/// Generates roughly `target_bytes` of newline-delimited JSON event
/// records with strings, escapes, numbers, arrays, and literals.
pub fn ndjson_events(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x150);
    let mut out = Vec::with_capacity(target_bytes + 256);
    let mut id = 1_000u64;
    while out.len() < target_bytes {
        id += rng.gen_range(1..7);
        let n_tags = rng.gen_range(0..4);
        let mut tags = String::new();
        for k in 0..n_tags {
            if k > 0 {
                tags.push(',');
            }
            tags.push_str(&format!("\"{}\"", TAGS[rng.gen_range(0..TAGS.len())]));
        }
        let rec = format!(
            "{{\"id\":{id},\"user\":\"{}\",\"score\":{:.2},\"ratio\":{:.4}e{},\"tags\":[{tags}],\"active\":{},\"parent\":{},\"note\":\"{}\"}}\n",
            USERS[rng.gen_range(0..USERS.len())],
            rng.gen_range(0.0..100.0f64),
            rng.gen_range(1.0..9.9f64),
            rng.gen_range(-3..4i8),
            if rng.gen_ratio(2, 3) { "true" } else { "false" },
            if rng.gen_ratio(1, 5) {
                "null".to_string()
            } else {
                rng.gen_range(1..1000u32).to_string()
            },
            NOTES[rng.gen_range(0..NOTES.len())],
        );
        out.extend_from_slice(rec.as_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_codecs::json::{validate, JsonTokenizer};

    #[test]
    fn generated_ndjson_is_valid_json() {
        let data = ndjson_events(30_000, 1);
        let toks = JsonTokenizer::new()
            .tokenize(&data)
            .expect("generator output tokenizes strictly");
        let values = validate(&toks).expect("generator output validates");
        assert!(values > 20, "several records: {values}");
    }

    #[test]
    fn contains_escapes_and_exponents() {
        let data = ndjson_events(30_000, 2);
        let s = String::from_utf8_lossy(&data);
        assert!(s.contains("\\\""), "escaped quotes present");
        assert!(s.contains("\\u"), "unicode escapes present");
        assert!(s.contains('e'), "exponent numbers present");
    }

    #[test]
    fn deterministic() {
        assert_eq!(ndjson_events(5_000, 3), ndjson_events(5_000, 3));
    }
}

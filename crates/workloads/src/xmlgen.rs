//! XML record generation (the PowerEN-XML-comparison workload shape:
//! data-interchange documents of repeated records).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CITIES: &[&str] = &["chicago", "nyc", "sf", "boston", "austin", "seattle"];
const STATUSES: &[&str] = &["ok", "late", "failed", "retry"];

/// Generates roughly `target_bytes` of `<batch>` documents containing
/// `<order>` records with attributes, nested elements, text (including
/// raw entities), and self-closing tags.
pub fn xml_records(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1234_5678);
    let mut out = Vec::with_capacity(target_bytes + 512);
    let mut id = 5_000u64;
    while out.len() < target_bytes {
        out.extend_from_slice(b"<batch>\n");
        for _ in 0..rng.gen_range(2..6) {
            id += rng.gen_range(1..9);
            let city = CITIES[rng.gen_range(0..CITIES.len())];
            let status = STATUSES[rng.gen_range(0..STATUSES.len())];
            let rec = format!(
                "  <order id=\"{id}\" city='{city}' status=\"{status}\">\n    <qty>{}</qty>\n    <price>{}.{:02}</price>\n    <note>item {} &amp; co &lt;expedited&gt;</note>\n    <flag v=\"{}\"/>\n  </order>\n",
                rng.gen_range(1..100),
                rng.gen_range(1..500),
                rng.gen_range(0..100),
                rng.gen_range(1..50),
                rng.gen_range(0..2),
            );
            out.extend_from_slice(rec.as_bytes());
            if out.len() >= target_bytes {
                break;
            }
        }
        out.extend_from_slice(b"</batch>\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_codecs::xml::{validate, XmlTokenizer};

    #[test]
    fn generated_xml_is_valid() {
        let data = xml_records(20_000, 1);
        let toks = XmlTokenizer::new()
            .tokenize(&data)
            .expect("generator output tokenizes strictly");
        let roots = validate(&toks).expect("generator output nests correctly");
        assert!(roots >= 1);
    }

    #[test]
    fn contains_entities_and_self_closing() {
        let data = xml_records(10_000, 2);
        let s = String::from_utf8_lossy(&data);
        assert!(s.contains("&amp;"));
        assert!(s.contains("/>"));
        assert!(s.contains('\''), "single-quoted attributes present");
    }

    #[test]
    fn deterministic() {
        assert_eq!(xml_records(5_000, 3), xml_records(5_000, 3));
    }
}

//! Dictionary and dictionary-RLE encoding (the Parquet-style baseline).
//!
//! Columnar stores dictionary-encode low-cardinality attributes: each
//! distinct value gets a dense integer code. The cost structure the paper
//! highlights ("Costly Hash 67% runtime", Table 2) comes from hashing
//! every incoming value to probe the dictionary — so the encoder uses an
//! explicit open-addressing table with a multiplicative hash, exactly the
//! structure the UDP program reproduces with its `Hash` action and
//! flagged dispatch.

use crate::rle::{rle_encode, Run};

/// A dictionary encoder over byte-string values.
#[derive(Debug, Clone)]
pub struct DictionaryEncoder {
    /// Distinct values in first-seen order (code = index).
    dictionary: Vec<Vec<u8>>,
    /// Open-addressing table of `dictionary` indexes (+1; 0 = empty).
    table: Vec<u32>,
    mask: usize,
}

impl Default for DictionaryEncoder {
    fn default() -> Self {
        Self::with_capacity(1 << 12)
    }
}

/// The multiplicative byte-string hash shared with the UDP program
/// (a `Crc`/`Hash` action chain).
pub fn dict_hash(value: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in value {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h.wrapping_mul(0x9E37_79B1)
}

impl DictionaryEncoder {
    /// An encoder with a hash table of at least `capacity` slots
    /// (rounded up to a power of two).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(16);
        DictionaryEncoder {
            dictionary: Vec::new(),
            table: vec![0; cap],
            mask: cap - 1,
        }
    }

    /// Encodes one value, interning it if new; returns its code.
    pub fn encode_value(&mut self, value: &[u8]) -> u32 {
        let mut slot = (dict_hash(value) as usize) & self.mask;
        loop {
            match self.table[slot] {
                0 => {
                    let code = self.dictionary.len() as u32;
                    self.dictionary.push(value.to_vec());
                    self.table[slot] = code + 1;
                    if self.dictionary.len() * 2 > self.table.len() {
                        self.grow();
                    }
                    return code;
                }
                c => {
                    let code = c - 1;
                    if self.dictionary[code as usize] == value {
                        return code;
                    }
                    slot = (slot + 1) & self.mask;
                }
            }
        }
    }

    fn grow(&mut self) {
        let cap = self.table.len() * 2;
        self.table = vec![0; cap];
        self.mask = cap - 1;
        for (i, v) in self.dictionary.iter().enumerate() {
            let mut slot = (dict_hash(v) as usize) & self.mask;
            while self.table[slot] != 0 {
                slot = (slot + 1) & self.mask;
            }
            self.table[slot] = i as u32 + 1;
        }
    }

    /// Encodes a column of values.
    pub fn encode_column<V: AsRef<[u8]>>(&mut self, values: &[V]) -> Vec<u32> {
        values
            .iter()
            .map(|v| self.encode_value(v.as_ref()))
            .collect()
    }

    /// The interned dictionary.
    pub fn dictionary(&self) -> &[Vec<u8>] {
        &self.dictionary
    }

    /// Distinct-value count.
    pub fn cardinality(&self) -> usize {
        self.dictionary.len()
    }

    /// Decodes codes back to values.
    ///
    /// # Panics
    ///
    /// Panics on a code outside the dictionary.
    pub fn decode_column(&self, codes: &[u32]) -> Vec<Vec<u8>> {
        codes
            .iter()
            .map(|&c| self.dictionary[c as usize].clone())
            .collect()
    }
}

/// Dictionary + run-length encoding (the paper's dictionary-RLE kernel).
#[derive(Debug, Clone, Default)]
pub struct DictRleEncoder {
    inner: DictionaryEncoder,
}

impl DictRleEncoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a column into `(dictionary codes as runs)`.
    pub fn encode_column<V: AsRef<[u8]>>(&mut self, values: &[V]) -> Vec<Run<u32>> {
        let codes = self.inner.encode_column(values);
        rle_encode(&codes)
    }

    /// The underlying dictionary encoder.
    pub fn dictionary(&self) -> &DictionaryEncoder {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle::rle_decode;
    use proptest::prelude::*;

    #[test]
    fn codes_are_dense_and_stable() {
        let mut e = DictionaryEncoder::default();
        let codes = e.encode_column(&["NY", "LA", "NY", "SF", "LA", "NY"]);
        assert_eq!(codes, vec![0, 1, 0, 2, 1, 0]);
        assert_eq!(e.cardinality(), 3);
    }

    #[test]
    fn decode_inverts_encode() {
        let mut e = DictionaryEncoder::default();
        let vals = vec!["a", "bb", "a", "ccc", "bb"];
        let codes = e.encode_column(&vals);
        let back = e.decode_column(&codes);
        assert_eq!(
            back,
            vals.iter()
                .map(|v| v.as_bytes().to_vec())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn growth_preserves_codes() {
        let mut e = DictionaryEncoder::with_capacity(16);
        let vals: Vec<String> = (0..1000).map(|i| format!("v{i}")).collect();
        let codes = e.encode_column(&vals);
        assert_eq!(codes, (0..1000u32).collect::<Vec<_>>());
        // Re-encoding yields the same codes.
        let again = e.encode_column(&vals);
        assert_eq!(again, codes);
    }

    #[test]
    fn dict_rle_compresses_runs() {
        let mut e = DictRleEncoder::new();
        let runs = e.encode_column(&["x", "x", "x", "y", "y", "x"]);
        assert_eq!(
            runs,
            vec![
                Run {
                    value: 0,
                    length: 3
                },
                Run {
                    value: 1,
                    length: 2
                },
                Run {
                    value: 0,
                    length: 1
                },
            ]
        );
        assert_eq!(rle_decode(&runs), vec![0, 0, 0, 1, 1, 0]);
    }

    proptest! {
        #[test]
        fn prop_dictionary_round_trip(vals in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..12), 0..300)) {
            let mut e = DictionaryEncoder::with_capacity(16);
            let codes = e.encode_column(&vals);
            prop_assert_eq!(e.decode_column(&codes), vals);
            // Codes are dense: max code < cardinality.
            if let Some(&m) = codes.iter().max() {
                prop_assert!((m as usize) < e.cardinality());
            }
        }
    }
}

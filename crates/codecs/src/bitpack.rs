//! Bit-packing of integer codes (the DAX-Pack encoding family of
//! Table 1): dictionary codes stored in exactly `width` bits each,
//! MSB-first.

/// Minimum bits needed to represent every value in `codes`.
pub fn bits_needed(codes: &[u32]) -> u8 {
    let max = codes.iter().copied().max().unwrap_or(0);
    (32 - max.leading_zeros()).max(1) as u8
}

/// Packs `codes` at `width` bits each, MSB-first, zero-padded to a
/// whole byte.
///
/// # Panics
///
/// Panics if a code does not fit `width` bits or `width` is 0/>32.
pub fn bitpack_encode(codes: &[u32], width: u8) -> Vec<u8> {
    assert!((1..=32).contains(&width));
    let mut out = Vec::with_capacity((codes.len() * width as usize).div_ceil(8));
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &c in codes {
        assert!(
            width == 32 || c < (1u32 << width),
            "code {c} exceeds {width} bits"
        );
        acc = (acc << width) | u64::from(c);
        nbits += u32::from(width);
        while nbits >= 8 {
            out.push((acc >> (nbits - 8)) as u8);
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(((acc << (8 - nbits)) & 0xFF) as u8);
    }
    out
}

/// Unpacks `count` codes of `width` bits.
///
/// Returns `None` if `bytes` is too short.
pub fn bitpack_decode(bytes: &[u8], width: u8, count: usize) -> Option<Vec<u32>> {
    assert!((1..=32).contains(&width));
    let need_bits = count as u64 * u64::from(width);
    if (bytes.len() as u64) * 8 < need_bits {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    let mut pos: u64 = 0;
    for _ in 0..count {
        let mut v: u32 = 0;
        for _ in 0..width {
            let byte = bytes[(pos / 8) as usize];
            let bit = (byte >> (7 - (pos % 8))) & 1;
            v = (v << 1) | u32::from(bit);
            pos += 1;
        }
        out.push(v);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn widths() {
        assert_eq!(bits_needed(&[0]), 1);
        assert_eq!(bits_needed(&[1]), 1);
        assert_eq!(bits_needed(&[2]), 2);
        assert_eq!(bits_needed(&[255]), 8);
        assert_eq!(bits_needed(&[256]), 9);
    }

    #[test]
    fn pack_3bit() {
        // 0b101, 0b010, 0b111 -> 1010_1011 1000_0000
        let packed = bitpack_encode(&[0b101, 0b010, 0b111], 3);
        assert_eq!(packed, vec![0b1010_1011, 0b1000_0000]);
        assert_eq!(
            bitpack_decode(&packed, 3, 3).unwrap(),
            vec![0b101, 0b010, 0b111]
        );
    }

    #[test]
    fn short_buffer_is_none() {
        assert_eq!(bitpack_decode(&[0xFF], 5, 2), None);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_code_panics() {
        bitpack_encode(&[8], 3);
    }

    proptest! {
        #[test]
        fn prop_round_trip(codes in proptest::collection::vec(0u32..5000, 0..300)) {
            let w = bits_needed(&codes);
            let packed = bitpack_encode(&codes, w);
            prop_assert_eq!(bitpack_decode(&packed, w, codes.len()).unwrap(), codes);
        }
    }
}

//! XML tokenization and validation (Table 1's third parsing format;
//! the IBM PowerEN comparison row parses XML at 1.5 GB/s).
//!
//! The supported subset covers data-interchange XML: elements,
//! attributes (double- or single-quoted), text content, and
//! self-closing tags. Strict mode decodes the five predefined entities
//! and checks tag nesting; compat mode keeps entities raw and treats
//! text as the byte run from its first non-whitespace character to the
//! next `<` — exactly what the UDP tokenizer program emits.

use std::fmt;

/// An XML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlToken {
    /// `<name` — element open.
    OpenTag(Vec<u8>),
    /// `name="value"` inside a tag.
    Attr(Vec<u8>, Vec<u8>),
    /// `>` ending an open tag.
    OpenEnd,
    /// `/>` — self-closing.
    SelfClose,
    /// `</name>`.
    CloseTag(Vec<u8>),
    /// Text content (entity-decoded in strict mode, raw in compat).
    Text(Vec<u8>),
}

/// Tokenizer failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for XmlError {}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':' | b'.')
}

fn is_ws(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r')
}

/// The streaming tokenizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct XmlTokenizer {
    /// Compat mode: keep entities raw (the UDP program's framing).
    pub compat: bool,
}

impl XmlTokenizer {
    /// A strict tokenizer (entities decoded).
    pub fn new() -> Self {
        Self::default()
    }

    /// The UDP-framing-compatible tokenizer.
    pub fn compat() -> Self {
        XmlTokenizer { compat: true }
    }

    /// Tokenizes `input`.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed markup (bad names, unterminated
    /// tags or values, unsupported constructs like comments/CDATA).
    pub fn tokenize(&self, input: &[u8]) -> Result<Vec<XmlToken>, XmlError> {
        let err = |pos: usize, m: &str| XmlError {
            pos,
            message: m.to_string(),
        };
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < input.len() {
            if input[i] == b'<' {
                i += 1;
                match input.get(i) {
                    Some(b'/') => {
                        i += 1;
                        let start = i;
                        while i < input.len() && is_name_char(input[i]) {
                            i += 1;
                        }
                        if start == i {
                            return Err(err(i, "empty close-tag name"));
                        }
                        if input.get(i) != Some(&b'>') {
                            return Err(err(i, "close tag must end with '>'"));
                        }
                        out.push(XmlToken::CloseTag(input[start..i].to_vec()));
                        i += 1;
                    }
                    Some(&b) if is_name_start(b) => {
                        let start = i;
                        while i < input.len() && is_name_char(input[i]) {
                            i += 1;
                        }
                        out.push(XmlToken::OpenTag(input[start..i].to_vec()));
                        i = self.tag_rest(input, i, &mut out)?;
                    }
                    Some(b'!') | Some(b'?') => {
                        return Err(err(i, "comments/PI/CDATA are outside the subset"))
                    }
                    _ => return Err(err(i, "bad tag start")),
                }
            } else if is_ws(input[i]) {
                i += 1;
            } else {
                // Text run: first non-ws byte up to the next '<'.
                let start = i;
                while i < input.len() && input[i] != b'<' {
                    i += 1;
                }
                let raw = &input[start..i];
                let text = if self.compat {
                    raw.to_vec()
                } else {
                    decode_entities(raw).map_err(|m| err(start, &m))?
                };
                out.push(XmlToken::Text(text));
            }
        }
        Ok(out)
    }

    fn tag_rest(
        &self,
        input: &[u8],
        mut i: usize,
        out: &mut Vec<XmlToken>,
    ) -> Result<usize, XmlError> {
        let err = |pos: usize, m: &str| XmlError {
            pos,
            message: m.to_string(),
        };
        loop {
            while i < input.len() && is_ws(input[i]) {
                i += 1;
            }
            match input.get(i) {
                Some(b'>') => {
                    out.push(XmlToken::OpenEnd);
                    return Ok(i + 1);
                }
                Some(b'/') => {
                    if input.get(i + 1) != Some(&b'>') {
                        return Err(err(i, "expected '/>'"));
                    }
                    out.push(XmlToken::SelfClose);
                    return Ok(i + 2);
                }
                Some(&b) if is_name_start(b) => {
                    let start = i;
                    while i < input.len() && is_name_char(input[i]) {
                        i += 1;
                    }
                    let name = input[start..i].to_vec();
                    if input.get(i) != Some(&b'=') {
                        return Err(err(i, "attribute needs '='"));
                    }
                    i += 1;
                    let quote = match input.get(i) {
                        Some(&q @ (b'"' | b'\'')) => q,
                        _ => return Err(err(i, "attribute value must be quoted")),
                    };
                    i += 1;
                    let vstart = i;
                    while i < input.len() && input[i] != quote {
                        i += 1;
                    }
                    if i >= input.len() {
                        return Err(err(vstart, "unterminated attribute value"));
                    }
                    let raw = &input[vstart..i];
                    let value = if self.compat {
                        raw.to_vec()
                    } else {
                        decode_entities(raw).map_err(|m| err(vstart, &m))?
                    };
                    out.push(XmlToken::Attr(name, value));
                    i += 1;
                }
                _ => return Err(err(i, "unterminated tag")),
            }
        }
    }
}

fn decode_entities(raw: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0usize;
    while i < raw.len() {
        if raw[i] == b'&' {
            let end = raw[i..]
                .iter()
                .position(|&b| b == b';')
                .ok_or("unterminated entity")?;
            let name = &raw[i + 1..i + end];
            match name {
                b"amp" => out.push(b'&'),
                b"lt" => out.push(b'<'),
                b"gt" => out.push(b'>'),
                b"quot" => out.push(b'"'),
                b"apos" => out.push(b'\''),
                other => {
                    return Err(format!(
                        "unknown entity &{};",
                        String::from_utf8_lossy(other)
                    ))
                }
            }
            i += end + 1;
        } else {
            out.push(raw[i]);
            i += 1;
        }
    }
    Ok(out)
}

/// Nesting validation: every close matches the innermost open; returns
/// the number of top-level elements.
pub fn validate(tokens: &[XmlToken]) -> Result<usize, XmlError> {
    let mut stack: Vec<&[u8]> = Vec::new();
    let mut roots = 0usize;
    let mut last_open: Option<&[u8]> = None;
    for (i, t) in tokens.iter().enumerate() {
        let err = |m: String| XmlError { pos: i, message: m };
        match t {
            XmlToken::OpenTag(n) => {
                last_open = Some(n);
                stack.push(n);
            }
            XmlToken::SelfClose => {
                stack.pop();
                let _ = last_open.take();
                if stack.is_empty() {
                    roots += 1;
                }
            }
            XmlToken::OpenEnd | XmlToken::Attr(..) => {}
            XmlToken::CloseTag(n) => match stack.pop() {
                Some(open) if open == &n[..] => {
                    if stack.is_empty() {
                        roots += 1;
                    }
                }
                Some(open) => {
                    return Err(err(format!(
                        "mismatched </{}> for <{}>",
                        String::from_utf8_lossy(n),
                        String::from_utf8_lossy(open)
                    )))
                }
                None => {
                    return Err(err(format!(
                        "close tag </{}> without open",
                        String::from_utf8_lossy(n)
                    )))
                }
            },
            XmlToken::Text(_) => {}
        }
    }
    if !stack.is_empty() {
        return Err(XmlError {
            pos: tokens.len(),
            message: "unclosed elements at end of input".to_string(),
        });
    }
    Ok(roots)
}

/// Serializes tokens in the UDP tokenizer's framing: `O`/`C` + name +
/// `0x1F`; `A` + name + `0x1F` + value + `0x1F`; `>` / `E` for open-end
/// and self-close; `X` + text + `0x1F`.
pub fn compat_framing(tokens: &[XmlToken]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match t {
            XmlToken::OpenTag(n) => {
                out.push(b'O');
                out.extend_from_slice(n);
                out.push(0x1F);
            }
            XmlToken::Attr(n, v) => {
                out.push(b'A');
                out.extend_from_slice(n);
                out.push(0x1F);
                out.extend_from_slice(v);
                out.push(0x1F);
            }
            XmlToken::OpenEnd => out.push(b'>'),
            XmlToken::SelfClose => out.push(b'E'),
            XmlToken::CloseTag(n) => {
                out.push(b'C');
                out.extend_from_slice(n);
                out.push(0x1F);
            }
            XmlToken::Text(x) => {
                out.push(b'X');
                out.extend_from_slice(x);
                out.push(0x1F);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<XmlToken> {
        XmlTokenizer::new().tokenize(s.as_bytes()).unwrap()
    }

    #[test]
    fn element_with_attrs_and_text() {
        let t = toks(r#"<row id="7" kind='x'>hello</row>"#);
        assert_eq!(t[0], XmlToken::OpenTag(b"row".to_vec()));
        assert_eq!(t[1], XmlToken::Attr(b"id".to_vec(), b"7".to_vec()));
        assert_eq!(t[2], XmlToken::Attr(b"kind".to_vec(), b"x".to_vec()));
        assert_eq!(t[3], XmlToken::OpenEnd);
        assert_eq!(t[4], XmlToken::Text(b"hello".to_vec()));
        assert_eq!(t[5], XmlToken::CloseTag(b"row".to_vec()));
        assert_eq!(validate(&t).unwrap(), 1);
    }

    #[test]
    fn self_closing_and_nesting() {
        let t = toks("<a><b/><c>t</c></a>");
        assert!(t.contains(&XmlToken::SelfClose));
        assert_eq!(validate(&t).unwrap(), 1);
    }

    #[test]
    fn entities_strict_vs_compat() {
        let input = b"<v>a &amp; b &lt;c&gt;</v>";
        let strict = XmlTokenizer::new().tokenize(input).unwrap();
        assert_eq!(strict[2], XmlToken::Text(b"a & b <c>".to_vec()));
        let compat = XmlTokenizer::compat().tokenize(input).unwrap();
        assert_eq!(compat[2], XmlToken::Text(b"a &amp; b &lt;c&gt;".to_vec()));
    }

    #[test]
    fn mismatched_nesting_fails_validation() {
        let t = toks("<a><b></a></b>");
        assert!(validate(&t).is_err());
        let t = toks("<a>");
        assert!(validate(&t).is_err());
    }

    #[test]
    fn lexical_errors() {
        let tz = XmlTokenizer::new();
        assert!(tz.tokenize(b"<1bad/>").is_err());
        assert!(tz.tokenize(b"<a foo>").is_err());
        assert!(tz.tokenize(b"<a foo=bar>").is_err());
        assert!(tz.tokenize(b"<a foo=\"unterminated").is_err());
        assert!(tz.tokenize(b"<!-- comment -->").is_err());
        assert!(tz.tokenize(b"<v>bad &entity;</v>").is_err());
    }

    #[test]
    fn text_whitespace_handling_matches_compat_rule() {
        // Leading whitespace before text is skipped; internal/trailing
        // whitespace up to '<' is kept.
        let t = XmlTokenizer::compat()
            .tokenize(b"<a>  hi there </a>")
            .unwrap();
        assert_eq!(t[2], XmlToken::Text(b"hi there ".to_vec()));
        // Pure-whitespace gaps produce no text token.
        let t = XmlTokenizer::compat().tokenize(b"<a>\n  </a>").unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn multiple_roots_counted() {
        let t = toks("<a/><b/><c>x</c>");
        assert_eq!(validate(&t).unwrap(), 3);
    }
}

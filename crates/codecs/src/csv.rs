//! CSV parsing with the libcsv state machine.
//!
//! The parser is the exact four-state FSM libcsv uses (and which the UDP
//! program reimplements, §4.1): field start, unquoted field, quoted
//! field, and quote-inside-quoted-field; `""` escapes a quote inside a
//! quoted field. Delimiters, record terminators, and quoting are
//! byte-oriented.

/// Parser events delivered in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvEvent {
    /// A field's decoded bytes (quotes stripped, `""` unescaped).
    Field(Vec<u8>),
    /// End of a record.
    EndRecord,
}

/// The libcsv-equivalent streaming parser.
#[derive(Debug, Clone)]
pub struct CsvParser {
    delimiter: u8,
    quote: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum S {
    FieldStart,
    Unquoted,
    Quoted,
    QuoteInQuoted,
}

impl Default for CsvParser {
    fn default() -> Self {
        CsvParser {
            delimiter: b',',
            quote: b'"',
        }
    }
}

impl CsvParser {
    /// A comma/double-quote parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the field delimiter.
    pub fn with_delimiter(mut self, d: u8) -> Self {
        self.delimiter = d;
        self
    }

    /// Parses `input`, invoking `sink` per event. Implements the libcsv
    /// FSM; a final unterminated record is flushed at end of input.
    pub fn parse_events<F: FnMut(CsvEvent)>(&self, input: &[u8], mut sink: F) {
        let mut state = S::FieldStart;
        let mut field: Vec<u8> = Vec::new();
        let mut any_in_record = false;
        for &b in input {
            state = self.step(state, b, &mut field, &mut any_in_record, &mut sink);
        }
        if any_in_record || !field.is_empty() || state != S::FieldStart {
            sink(CsvEvent::Field(std::mem::take(&mut field)));
            sink(CsvEvent::EndRecord);
        }
    }

    fn step<F: FnMut(CsvEvent)>(
        &self,
        state: S,
        b: u8,
        field: &mut Vec<u8>,
        any_in_record: &mut bool,
        sink: &mut F,
    ) -> S {
        let d = self.delimiter;
        let q = self.quote;
        match state {
            S::FieldStart => {
                if b == q {
                    *any_in_record = true;
                    S::Quoted
                } else if b == d {
                    *any_in_record = true;
                    sink(CsvEvent::Field(std::mem::take(field)));
                    S::FieldStart
                } else if b == b'\n' {
                    if *any_in_record {
                        sink(CsvEvent::Field(std::mem::take(field)));
                        sink(CsvEvent::EndRecord);
                    }
                    *any_in_record = false;
                    S::FieldStart
                } else if b == b'\r' {
                    S::FieldStart
                } else {
                    *any_in_record = true;
                    field.push(b);
                    S::Unquoted
                }
            }
            S::Unquoted => {
                if b == d {
                    sink(CsvEvent::Field(std::mem::take(field)));
                    S::FieldStart
                } else if b == b'\n' {
                    sink(CsvEvent::Field(std::mem::take(field)));
                    sink(CsvEvent::EndRecord);
                    *any_in_record = false;
                    S::FieldStart
                } else if b == b'\r' {
                    S::Unquoted
                } else {
                    field.push(b);
                    S::Unquoted
                }
            }
            S::Quoted => {
                if b == q {
                    S::QuoteInQuoted
                } else {
                    field.push(b);
                    S::Quoted
                }
            }
            S::QuoteInQuoted => {
                if b == q {
                    // Escaped quote.
                    field.push(q);
                    S::Quoted
                } else if b == d {
                    sink(CsvEvent::Field(std::mem::take(field)));
                    S::FieldStart
                } else if b == b'\n' {
                    sink(CsvEvent::Field(std::mem::take(field)));
                    sink(CsvEvent::EndRecord);
                    *any_in_record = false;
                    S::FieldStart
                } else if b == b'\r' {
                    S::QuoteInQuoted
                } else {
                    // libcsv tolerates stray bytes after a closing quote.
                    field.push(b);
                    S::Unquoted
                }
            }
        }
    }

    /// Parses into rows of fields.
    pub fn parse(&self, input: &[u8]) -> Vec<Vec<Vec<u8>>> {
        let mut rows = Vec::new();
        let mut row = Vec::new();
        self.parse_events(input, |e| match e {
            CsvEvent::Field(f) => row.push(f),
            CsvEvent::EndRecord => rows.push(std::mem::take(&mut row)),
        });
        rows
    }

    /// Counts `(records, fields, field_bytes)` without materializing —
    /// the throughput-measurement entry point.
    pub fn parse_stats(&self, input: &[u8]) -> (u64, u64, u64) {
        let mut records = 0u64;
        let mut fields = 0u64;
        let mut bytes = 0u64;
        self.parse_events(input, |e| match e {
            CsvEvent::Field(f) => {
                fields += 1;
                bytes += f.len() as u64;
            }
            CsvEvent::EndRecord => records += 1,
        });
        (records, fields, bytes)
    }
}

/// Serializes rows back to CSV, quoting where needed (test helper and
/// workload-generator support).
pub fn write_csv(rows: &[Vec<Vec<u8>>]) -> Vec<u8> {
    let mut out = Vec::new();
    for row in rows {
        for (i, f) in row.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            let needs_quote = f
                .iter()
                .any(|&b| b == b',' || b == b'"' || b == b'\n' || b == b'\r');
            if needs_quote {
                out.push(b'"');
                for &b in f {
                    if b == b'"' {
                        out.push(b'"');
                    }
                    out.push(b);
                }
                out.push(b'"');
            } else {
                out.extend_from_slice(f);
            }
        }
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rows(input: &[u8]) -> Vec<Vec<Vec<u8>>> {
        CsvParser::new().parse(input)
    }

    #[test]
    fn simple_rows() {
        let r = rows(b"a,b,c\nd,e,f\n");
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let r = rows(b"\"a,b\",\"line1\nline2\",x\n");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0][0], b"a,b");
        assert_eq!(r[0][1], b"line1\nline2");
        assert_eq!(r[0][2], b"x");
    }

    #[test]
    fn escaped_quotes() {
        let r = rows(b"\"he said \"\"hi\"\"\",y\n");
        assert_eq!(r[0][0], b"he said \"hi\"");
    }

    #[test]
    fn empty_fields_and_trailing_record() {
        let r = rows(b"a,,c");
        assert_eq!(r, vec![vec![b"a".to_vec(), b"".to_vec(), b"c".to_vec()]]);
    }

    #[test]
    fn crlf_line_endings() {
        let r = rows(b"a,b\r\nc,d\r\n");
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], vec![b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let r = rows(b"a\n\n\nb\n");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn stats_match_parse() {
        let input = b"a,bb,ccc\nx,y\n";
        let (rec, fld, byt) = CsvParser::new().parse_stats(input);
        assert_eq!((rec, fld, byt), (2, 5, 8));
    }

    fn arb_field() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            prop_oneof![
                Just(b'a'),
                Just(b'b'),
                Just(b','),
                Just(b'"'),
                Just(b'\n'),
                Just(b' '),
            ],
            0..8,
        )
    }

    proptest! {
        #[test]
        fn prop_write_then_parse_round_trips(
            table in proptest::collection::vec(
                proptest::collection::vec(arb_field(), 1..5), 1..6)
        ) {
            // Skip rows that serialize to a fully empty line (blank-line
            // skipping makes them unrepresentable — as in libcsv).
            let table: Vec<Vec<Vec<u8>>> = table
                .into_iter()
                .filter(|row| !(row.len() == 1 && row[0].is_empty()))
                .collect();
            prop_assume!(!table.is_empty());
            let bytes = write_csv(&table);
            let parsed = CsvParser::new().parse(&bytes);
            prop_assert_eq!(table, parsed);
        }
    }
}

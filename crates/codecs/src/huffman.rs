//! Canonical Huffman coding (the libhuffman baseline, §4.1).
//!
//! Encoding walks a per-byte code table and emits variable-length codes
//! MSB-first; decoding walks the binary code tree bit-by-bit — the
//! branch-intensive structure that makes this kernel 5× worse than the
//! PARSEC mean in mispredicted branches (Table 2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// A byte's code: up to 32 bits, MSB-first in the low bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HuffmanCode {
    /// The code bits (left-aligned at bit `len-1`).
    pub bits: u32,
    /// Code length in bits (0 = symbol absent).
    pub len: u8,
}

/// A decode-tree node: either an internal node or a leaf symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffmanNode {
    /// `(zero_child, one_child)` indexes into the node table.
    Internal(u32, u32),
    /// Decoded byte.
    Leaf(u8),
}

/// A canonical Huffman code over bytes.
#[derive(Clone)]
pub struct HuffmanTree {
    codes: [HuffmanCode; 256],
    nodes: Vec<HuffmanNode>,
    root: u32,
}

impl fmt::Debug for HuffmanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HuffmanTree{{{} symbols, {} nodes}}",
            self.codes.iter().filter(|c| c.len > 0).count(),
            self.nodes.len()
        )
    }
}

impl HuffmanTree {
    /// Builds a canonical code from byte frequencies.
    ///
    /// Symbols with zero frequency get no code. With a single distinct
    /// symbol, it receives a 1-bit code.
    // The heap pops below run under a `heap.len() > 1` guard (and the
    // ≥2-symbol match arm), so the expects encode a local invariant,
    // not an input-dependent failure path.
    #[allow(clippy::expect_used)]
    pub fn from_frequencies(freqs: &[u64; 256]) -> HuffmanTree {
        // Package the Huffman algorithm over a min-heap of (freq, tie, id).
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        struct Item(Reverse<u64>, Reverse<u32>, i32); // freq, tiebreak, node
        let mut lengths = [0u8; 256];
        let present: Vec<u8> = (0..256u16)
            .filter(|&b| freqs[b as usize] > 0)
            .map(|b| b as u8)
            .collect();
        match present.len() {
            0 => {}
            1 => lengths[present[0] as usize] = 1,
            _ => {
                // Build the tree shape to extract depths.
                struct Tmp {
                    sym: i16,
                    kids: Option<(usize, usize)>,
                }
                let mut tmp: Vec<Tmp> = Vec::new();
                let mut heap: BinaryHeap<Item> = BinaryHeap::new();
                for &s in &present {
                    tmp.push(Tmp {
                        sym: i16::from(s),
                        kids: None,
                    });
                    heap.push(Item(
                        Reverse(freqs[s as usize]),
                        Reverse(tmp.len() as u32),
                        (tmp.len() - 1) as i32,
                    ));
                }
                while heap.len() > 1 {
                    let a = heap.pop().expect("len>1");
                    let b = heap.pop().expect("len>1");
                    tmp.push(Tmp {
                        sym: -1,
                        kids: Some((a.2 as usize, b.2 as usize)),
                    });
                    heap.push(Item(
                        Reverse(a.0 .0 + b.0 .0),
                        Reverse(tmp.len() as u32),
                        (tmp.len() - 1) as i32,
                    ));
                }
                let root = heap.pop().expect("root").2 as usize;
                let mut stack = vec![(root, 0u8)];
                while let Some((n, d)) = stack.pop() {
                    match tmp[n].kids {
                        Some((a, b)) => {
                            stack.push((a, d + 1));
                            stack.push((b, d + 1));
                        }
                        None => lengths[tmp[n].sym as usize] = d.max(1),
                    }
                }
            }
        }
        Self::from_lengths(&lengths)
    }

    /// Builds the canonical code from per-symbol code lengths.
    pub fn from_lengths(lengths: &[u8; 256]) -> HuffmanTree {
        // Canonical assignment: sort by (length, symbol).
        let mut symbols: Vec<u8> = (0..256u16)
            .filter(|&b| lengths[b as usize] > 0)
            .map(|b| b as u8)
            .collect();
        symbols.sort_by_key(|&s| (lengths[s as usize], s));
        let mut codes = [HuffmanCode::default(); 256];
        let mut code: u32 = 0;
        let mut prev_len = 0u8;
        for &s in &symbols {
            let len = lengths[s as usize];
            code <<= len - prev_len;
            codes[s as usize] = HuffmanCode { bits: code, len };
            code += 1;
            prev_len = len;
        }
        // Decode tree.
        let mut nodes: Vec<HuffmanNode> = Vec::new();
        let mut root = u32::MAX;
        if !symbols.is_empty() {
            nodes.push(HuffmanNode::Internal(u32::MAX, u32::MAX));
            root = 0;
            for &s in &symbols {
                let c = codes[s as usize];
                let mut cur = 0usize;
                for i in (0..c.len).rev() {
                    let bit = (c.bits >> i) & 1;
                    let leaf = i == 0;
                    let HuffmanNode::Internal(z, o) = nodes[cur] else {
                        unreachable!("prefix property violated");
                    };
                    let slot = if bit == 0 { z } else { o };
                    let nxt = if slot == u32::MAX {
                        let id = nodes.len() as u32;
                        nodes.push(if leaf {
                            HuffmanNode::Leaf(s)
                        } else {
                            HuffmanNode::Internal(u32::MAX, u32::MAX)
                        });
                        if let HuffmanNode::Internal(z, o) = &mut nodes[cur] {
                            if bit == 0 {
                                *z = id;
                            } else {
                                *o = id;
                            }
                        }
                        id
                    } else {
                        slot
                    };
                    cur = nxt as usize;
                }
            }
        }
        HuffmanTree { codes, nodes, root }
    }

    /// Convenience: code built from the content of `data`.
    pub fn from_data(data: &[u8]) -> HuffmanTree {
        let mut freqs = [0u64; 256];
        for &b in data {
            freqs[b as usize] += 1;
        }
        Self::from_frequencies(&freqs)
    }

    /// The code table.
    pub fn code(&self, symbol: u8) -> HuffmanCode {
        self.codes[symbol as usize]
    }

    /// Decode-tree nodes (UDP compiler input).
    pub fn nodes(&self) -> &[HuffmanNode] {
        &self.nodes
    }

    /// Decode-tree root index.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Longest code length in bits.
    pub fn max_len(&self) -> u8 {
        self.codes.iter().map(|c| c.len).max().unwrap_or(0)
    }

    /// Encodes `data`, returning `(bits, bit_length)` packed MSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `data` contains a symbol absent from the code.
    pub fn encode(&self, data: &[u8]) -> (Vec<u8>, u64) {
        let mut out: Vec<u8> = Vec::with_capacity(data.len());
        let mut acc: u64 = 0;
        let mut nbits: u32 = 0;
        let mut total: u64 = 0;
        for &b in data {
            let c = self.codes[b as usize];
            assert!(c.len > 0, "symbol {b:#x} has no code");
            acc = (acc << c.len) | u64::from(c.bits);
            nbits += u32::from(c.len);
            total += u64::from(c.len);
            while nbits >= 8 {
                out.push((acc >> (nbits - 8)) as u8);
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push(((acc << (8 - nbits)) & 0xFF) as u8);
        }
        (out, total)
    }

    /// Decodes `nbits` of `bits` by walking the tree bit-by-bit (the
    /// libhuffman structure).
    ///
    /// Returns `None` on a truncated or invalid stream.
    pub fn decode(&self, bits: &[u8], nbits: u64) -> Option<Vec<u8>> {
        if self.root == u32::MAX {
            return if nbits == 0 { Some(Vec::new()) } else { None };
        }
        let mut out = Vec::new();
        let mut cur = self.root as usize;
        for i in 0..nbits {
            let byte = *bits.get((i / 8) as usize)?;
            let bit = (byte >> (7 - (i % 8))) & 1;
            let HuffmanNode::Internal(z, o) = self.nodes[cur] else {
                return None;
            };
            let nxt = if bit == 0 { z } else { o };
            if nxt == u32::MAX {
                return None;
            }
            cur = nxt as usize;
            if let HuffmanNode::Leaf(s) = self.nodes[cur] {
                out.push(s);
                cur = self.root as usize;
            }
        }
        if cur == self.root as usize {
            Some(out)
        } else {
            None // truncated mid-code
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_simple() {
        let data = b"abracadabra";
        let t = HuffmanTree::from_data(data);
        let (bits, n) = t.encode(data);
        assert_eq!(t.decode(&bits, n).unwrap(), data);
        // 'a' is most frequent: shortest code.
        assert!(t.code(b'a').len <= t.code(b'c').len);
    }

    #[test]
    fn single_symbol_input() {
        let data = b"aaaaaa";
        let t = HuffmanTree::from_data(data);
        assert_eq!(t.code(b'a').len, 1);
        let (bits, n) = t.encode(data);
        assert_eq!(n, 6);
        assert_eq!(t.decode(&bits, n).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        let t = HuffmanTree::from_data(b"");
        let (bits, n) = t.encode(b"");
        assert_eq!(n, 0);
        assert_eq!(t.decode(&bits, 0).unwrap(), b"");
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let t = HuffmanTree::from_data(b"the quick brown fox jumps over the lazy dog");
        let codes: Vec<HuffmanCode> = (0..=255u8)
            .map(|b| t.code(b))
            .filter(|c| c.len > 0)
            .collect();
        for (i, a) in codes.iter().enumerate() {
            for b in codes.iter().skip(i + 1) {
                let min = a.len.min(b.len);
                let pa = a.bits >> (a.len - min);
                let pb = b.bits >> (b.len - min);
                assert_ne!(pa, pb, "prefix collision");
            }
        }
    }

    #[test]
    fn truncated_stream_fails() {
        let data = b"hello world";
        let t = HuffmanTree::from_data(data);
        let (bits, n) = t.encode(data);
        assert!(t.decode(&bits, n - 1).is_none());
    }

    #[test]
    fn compression_beats_raw_on_skewed_data() {
        let mut data = vec![b'a'; 10_000];
        data.extend_from_slice(&[b'b'; 100]);
        data.extend_from_slice(b"cdefg");
        let t = HuffmanTree::from_data(&data);
        let (bits, _) = t.encode(&data);
        assert!(bits.len() < data.len() / 4);
    }

    proptest! {
        #[test]
        fn prop_round_trip(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            let t = HuffmanTree::from_data(&data);
            let (bits, n) = t.encode(&data);
            prop_assert_eq!(t.decode(&bits, n).unwrap(), data);
        }

        #[test]
        fn prop_kraft_inequality(data in proptest::collection::vec(any::<u8>(), 1..500)) {
            let t = HuffmanTree::from_data(&data);
            let kraft: f64 = (0..=255u8)
                .map(|b| t.code(b))
                .filter(|c| c.len > 0)
                .map(|c| 2f64.powi(-i32::from(c.len)))
                .sum();
            prop_assert!(kraft <= 1.0 + 1e-9, "kraft = {}", kraft);
        }
    }
}

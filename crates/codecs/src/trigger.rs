//! Signal triggering: pulsed-waveform transition localization (§5.7).
//!
//! The kernel localizes pulses of a given width in an oscilloscope
//! sample stream (Fang et al., I2MTC'16 [53]; FSMs p2–p13 detect pulse
//! widths 2–13). Samples quantize against low/high thresholds into
//! three symbols (Low / Mid / High); the FSM arms on a rising
//! transition, counts the high run, and fires an event on the falling
//! transition when the run length matches.
//!
//! The CPU baseline is the paper's: a lookup table that unrolls the
//! automaton four symbols per lookup ("mem indirect, address, cond,
//! 9 cycles" per Table 2). [`TriggerFsm`] is the reference automaton;
//! [`TriggerLut`] is that unrolled table.

/// Quantized waveform symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// At or below the low threshold.
    Low,
    /// Between thresholds (hysteresis band; holds state).
    Mid,
    /// At or above the high threshold.
    High,
}

/// The pulse-width transition-localization FSM (`pN` for width `N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerFsm {
    /// Low threshold (inclusive).
    pub low: u8,
    /// High threshold (inclusive).
    pub high: u8,
    /// Pulse width to localize, in samples (the `N` of `pN`, 2–13 in the
    /// paper).
    pub width: u32,
}

impl TriggerFsm {
    /// A detector for pulses of exactly `width` high samples.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high` and `width >= 1`.
    pub fn new(low: u8, high: u8, width: u32) -> TriggerFsm {
        assert!(low < high && width >= 1);
        TriggerFsm { low, high, width }
    }

    /// Quantizes one sample.
    pub fn quantize(&self, sample: u8) -> Level {
        if sample >= self.high {
            Level::High
        } else if sample <= self.low {
            Level::Low
        } else {
            Level::Mid
        }
    }

    /// State count: idle + high-run counts 1..=width+1 (overlong cap).
    pub fn state_count(&self) -> u32 {
        self.width + 2
    }

    /// One FSM step: `(next_state, event_fired)`. State 0 is idle; state
    /// `j >= 1` means a high run of `j` samples (capped at `width + 1`).
    pub fn step(&self, state: u32, level: Level) -> (u32, bool) {
        match (state, level) {
            (0, Level::High) => (1, false),
            (0, _) => (0, false),
            (j, Level::High) => ((j + 1).min(self.width + 1), false),
            (j, Level::Mid) => (j, false),
            (j, Level::Low) => (0, j == self.width),
        }
    }

    /// Reference run: event positions (sample index of the falling edge).
    pub fn run_reference(&self, samples: &[u8]) -> Vec<usize> {
        let mut events = Vec::new();
        let mut s = 0u32;
        for (i, &x) in samples.iter().enumerate() {
            let (ns, fire) = self.step(s, self.quantize(x));
            if fire {
                events.push(i);
            }
            s = ns;
        }
        events
    }
}

/// The unrolled 4-symbols-per-lookup table (the Keysight-style CPU code).
#[derive(Debug, Clone)]
pub struct TriggerLut {
    fsm: TriggerFsm,
    /// `table[state * 256 + packed4]` = next_state(8) | events(4 bits<<8):
    /// bit `8+k` set when an event fires at sub-position `k`.
    table: Vec<u16>,
    states: u32,
}

impl TriggerLut {
    /// Builds the table by unrolling `fsm` four quantized symbols deep.
    pub fn build(fsm: TriggerFsm) -> TriggerLut {
        let states = fsm.state_count();
        let mut table = vec![0u16; states as usize * 256];
        for s0 in 0..states {
            for packed in 0..256u32 {
                let mut s = s0;
                let mut events: u16 = 0;
                for k in 0..4 {
                    let sym = (packed >> (k * 2)) & 0b11;
                    let level = match sym {
                        0 => Level::Low,
                        1 => Level::Mid,
                        _ => Level::High,
                    };
                    let (ns, fire) = fsm.step(s, level);
                    if fire {
                        events |= 1 << (8 + k);
                    }
                    s = ns;
                }
                table[(s0 * 256 + packed) as usize] = events | s as u16;
            }
        }
        TriggerLut { fsm, table, states }
    }

    /// Quantizes and packs samples, 4 per byte (2 bits each, little-end
    /// first) — the preprocessed form the scope hardware delivers.
    pub fn pack(&self, samples: &[u8]) -> Vec<u8> {
        samples
            .chunks(4)
            .map(|chunk| {
                let mut b = 0u8;
                for (k, &x) in chunk.iter().enumerate() {
                    let sym = match self.fsm.quantize(x) {
                        Level::Low => 0u8,
                        Level::Mid => 1,
                        Level::High => 2,
                    };
                    b |= sym << (k * 2);
                }
                b
            })
            .collect()
    }

    /// Runs over packed symbols: one table lookup per 4 samples.
    pub fn run_packed(&self, packed: &[u8], n_samples: usize) -> Vec<usize> {
        let mut events = Vec::new();
        let mut s: u16 = 0;
        for (i, &b) in packed.iter().enumerate() {
            let e = self.table[(u32::from(s) * 256 + u32::from(b)) as usize];
            for k in 0..4 {
                let pos = i * 4 + k;
                if pos < n_samples && e & (1 << (8 + k)) != 0 {
                    events.push(pos);
                }
            }
            s = e & 0xFF;
        }
        events
    }

    /// End-to-end: quantize, pack, scan.
    pub fn run(&self, samples: &[u8]) -> Vec<usize> {
        let packed = self.pack(samples);
        self.run_packed(&packed, samples.len())
    }

    /// Number of FSM states.
    pub fn states(&self) -> u32 {
        self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fsm(width: u32) -> TriggerFsm {
        TriggerFsm::new(64, 192, width)
    }

    #[test]
    fn detects_exact_width_pulse() {
        let f = fsm(3);
        // low low high high high low ...
        let samples = [0, 0, 255, 255, 255, 0, 0];
        assert_eq!(f.run_reference(&samples), vec![5]);
    }

    #[test]
    fn rejects_wrong_width() {
        let f = fsm(3);
        assert!(f.run_reference(&[0, 255, 255, 0]).is_empty(), "too short");
        assert!(
            f.run_reference(&[0, 255, 255, 255, 255, 0]).is_empty(),
            "too long"
        );
    }

    #[test]
    fn mid_band_holds_state() {
        let f = fsm(2);
        // high high mid mid low: run of 2 highs, mids hold, then fall.
        assert_eq!(f.run_reference(&[255, 255, 128, 128, 0]), vec![4]);
    }

    #[test]
    fn multiple_pulses() {
        let f = fsm(2);
        let samples = [0, 255, 255, 0, 0, 255, 255, 0, 255, 0];
        assert_eq!(f.run_reference(&samples), vec![3, 7]);
    }

    #[test]
    fn lut_matches_reference() {
        let f = fsm(4);
        let lut = TriggerLut::build(f);
        let samples = [
            0, 255, 255, 255, 255, 0, 255, 255, 0, 128, 255, 255, 255, 255, 64, 0,
        ];
        assert_eq!(lut.run(&samples), f.run_reference(&samples));
    }

    proptest! {
        #[test]
        fn prop_lut_equals_fsm(width in 2u32..=13,
                               samples in proptest::collection::vec(any::<u8>(), 0..500)) {
            let f = fsm(width);
            let lut = TriggerLut::build(f);
            prop_assert_eq!(lut.run(&samples), f.run_reference(&samples));
        }
    }
}

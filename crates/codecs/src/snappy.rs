//! A block-compatible Snappy codec (the §4.1 compression baseline).
//!
//! Implements the Snappy raw format: a varint uncompressed length
//! followed by literal and copy elements. Tag byte low two bits select
//! the element type:
//!
//! * `00` literal — length in the tag (≤ 60) or in 1–4 trailing bytes;
//! * `01` copy, 1-byte offset — length 4–11 and offset 0–2047;
//! * `10` copy, 2-byte offset — length 1–64, 16-bit LE offset;
//! * `11` copy, 4-byte offset — length 1–64, 32-bit LE offset.
//!
//! Compression uses the reference greedy hash-of-4-bytes scheme. This is
//! the same match/emit control structure the UDP program expresses with
//! flagged dispatch plus `Hash`/`LoopCmp`/`LoopCpy` actions (§5.6).

use std::fmt;

/// Decompression failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnappyError {
    /// Input ended mid-element.
    Truncated,
    /// A copy reaches before the output start.
    BadOffset,
    /// Output length disagrees with the header.
    LengthMismatch {
        /// Header value.
        expected: u64,
        /// Actual decoded length.
        actual: u64,
    },
    /// A varint ran past 10 bytes.
    BadVarint,
}

impl fmt::Display for SnappyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnappyError::Truncated => write!(f, "truncated snappy stream"),
            SnappyError::BadOffset => write!(f, "copy offset out of range"),
            SnappyError::LengthMismatch { expected, actual } => {
                write!(f, "decoded {actual} bytes, header said {expected}")
            }
            SnappyError::BadVarint => write!(f, "malformed varint"),
        }
    }
}

impl std::error::Error for SnappyError {}

const MIN_MATCH: usize = 4;
const MAX_COPY_LEN: usize = 64;
const HASH_BITS: u32 = 14;

fn hash4(v: u32) -> usize {
    (v.wrapping_mul(0x1E35_A7BD) >> (32 - HASH_BITS)) as usize
}

fn load32(data: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]])
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, SnappyError> {
    let mut v: u64 = 0;
    for i in 0..10 {
        let b = *data.get(*pos).ok_or(SnappyError::Truncated)?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << (7 * i);
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(SnappyError::BadVarint)
}

fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    let n = lit.len();
    if n == 0 {
        return;
    }
    let len = n - 1;
    if len < 60 {
        out.push((len as u8) << 2);
    } else if len < 0x100 {
        out.push(60 << 2);
        out.push(len as u8);
    } else if len < 0x10000 {
        out.push(61 << 2);
        out.extend_from_slice(&(len as u16).to_le_bytes());
    } else if len < 0x1000000 {
        out.push(62 << 2);
        out.extend_from_slice(&(len as u32).to_le_bytes()[..3]);
    } else {
        out.push(63 << 2);
        out.extend_from_slice(&(len as u32).to_le_bytes());
    }
    out.extend_from_slice(lit);
}

fn emit_copy(out: &mut Vec<u8>, offset: usize, mut len: usize) {
    // Long matches: chunks of ≤64.
    while len > 0 {
        let this = len.min(MAX_COPY_LEN);
        // Prefer the compact 1-byte-offset form.
        if (4..=11).contains(&this) && offset < 2048 {
            out.push(0b01 | (((this - 4) as u8) << 2) | (((offset >> 8) as u8) << 5));
            out.push(offset as u8);
        } else if offset < 0x10000 {
            out.push(0b10 | (((this - 1) as u8) << 2));
            out.extend_from_slice(&(offset as u16).to_le_bytes());
        } else {
            out.push(0b11 | (((this - 1) as u8) << 2));
            out.extend_from_slice(&(offset as u32).to_le_bytes());
        }
        len -= this;
    }
}

/// Compresses `input` into the Snappy raw format.
///
/// ```
/// use udp_codecs::{snappy_compress, snappy_decompress};
/// let data = b"repeat repeat repeat repeat".to_vec();
/// let stream = snappy_compress(&data);
/// assert!(stream.len() < data.len());
/// assert_eq!(snappy_decompress(&stream)?, data);
/// # Ok::<(), udp_codecs::SnappyError>(())
/// ```
pub fn snappy_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_varint(&mut out, input.len() as u64);
    let n = input.len();
    if n < MIN_MATCH + 1 {
        emit_literal(&mut out, input);
        return out;
    }
    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 1usize;
    // Seed position 0 so offsets are never 0.
    table[hash4(load32(input, 0))] = 0;
    let limit = n - MIN_MATCH;
    while i <= limit {
        let h = hash4(load32(input, i));
        let cand = table[h] as usize;
        table[h] = i as u32;
        if cand < i && i - cand <= 0xFFFF_FFFF && load32(input, cand) == load32(input, i) {
            // Extend the match.
            let mut len = MIN_MATCH;
            while i + len < n && input[cand + len] == input[i + len] {
                len += 1;
            }
            emit_literal(&mut out, &input[lit_start..i]);
            emit_copy(&mut out, i - cand, len);
            // Re-seed a couple of positions inside the match.
            let end = i + len;
            let mut j = i + 1;
            while j < end.min(limit + 1) && j < i + 3 {
                table[hash4(load32(input, j))] = j as u32;
                j += 1;
            }
            i = end;
            lit_start = end;
        } else {
            i += 1;
        }
    }
    emit_literal(&mut out, &input[lit_start..]);
    out
}

/// A stream element can expand its input bytes at most this much: the
/// densest element is a 2-byte-offset copy — 3 stream bytes producing
/// up to 64 output bytes, i.e. ~22× per input byte. 32× is a safe
/// ceiling used to cap the up-front allocation: a hostile header
/// declaring a huge uncompressed length cannot make the decoder
/// reserve more than the stream could ever produce.
const MAX_EXPANSION: usize = 32;

/// Decompresses a Snappy raw stream.
///
/// Robustness contract (the fault harness fuzzes this): arbitrary
/// input bytes either decode or return a typed error — never a panic,
/// a hang, or an allocation beyond what the stream itself can justify.
/// The declared uncompressed length is capped at `32 × input` before
/// reserving, and decoding bails out with
/// [`SnappyError::LengthMismatch`] as soon as the output exceeds the
/// declared length.
///
/// # Errors
///
/// Returns [`SnappyError`] on malformed input.
pub fn snappy_decompress(data: &[u8]) -> Result<Vec<u8>, SnappyError> {
    let mut pos = 0usize;
    let expected = get_varint(data, &mut pos)?;
    let cap = (expected as usize).min(data.len().saturating_mul(MAX_EXPANSION));
    let mut out: Vec<u8> = Vec::with_capacity(cap);
    while pos < data.len() {
        if out.len() as u64 > expected {
            // Already longer than the header promised: the final
            // length check below can only fail, so stop doing work
            // (and allocating) now.
            return Err(SnappyError::LengthMismatch {
                expected,
                actual: out.len() as u64,
            });
        }
        let tag = data[pos];
        pos += 1;
        match tag & 0b11 {
            0b00 => {
                let mut len = (tag >> 2) as usize;
                if len >= 60 {
                    let extra = len - 59;
                    if pos + extra > data.len() {
                        return Err(SnappyError::Truncated);
                    }
                    len = 0;
                    for k in (0..extra).rev() {
                        len = (len << 8) | data[pos + k] as usize;
                    }
                    pos += extra;
                }
                let len = len + 1;
                if pos + len > data.len() {
                    return Err(SnappyError::Truncated);
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            0b01 => {
                if pos >= data.len() {
                    return Err(SnappyError::Truncated);
                }
                let len = 4 + ((tag >> 2) & 0x7) as usize;
                let offset = (((tag >> 5) as usize) << 8) | data[pos] as usize;
                pos += 1;
                copy_back(&mut out, offset, len)?;
            }
            0b10 => {
                if pos + 2 > data.len() {
                    return Err(SnappyError::Truncated);
                }
                let len = 1 + (tag >> 2) as usize;
                let offset = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
                pos += 2;
                copy_back(&mut out, offset, len)?;
            }
            _ => {
                if pos + 4 > data.len() {
                    return Err(SnappyError::Truncated);
                }
                let len = 1 + (tag >> 2) as usize;
                let offset =
                    u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]])
                        as usize;
                pos += 4;
                copy_back(&mut out, offset, len)?;
            }
        }
    }
    if out.len() as u64 != expected {
        return Err(SnappyError::LengthMismatch {
            expected,
            actual: out.len() as u64,
        });
    }
    Ok(out)
}

fn copy_back(out: &mut Vec<u8>, offset: usize, len: usize) -> Result<(), SnappyError> {
    if offset == 0 || offset > out.len() {
        return Err(SnappyError::BadOffset);
    }
    let start = out.len() - offset;
    for k in 0..len {
        let b = out[start + k];
        out.push(b);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_text() {
        let data = b"the quick brown fox jumps over the lazy dog. the quick brown fox!";
        let c = snappy_compress(data);
        assert_eq!(snappy_decompress(&c).unwrap(), data);
    }

    #[test]
    fn compresses_repetitive_data() {
        let data: Vec<u8> = b"abcdefgh".repeat(1000);
        let c = snappy_compress(&data);
        assert!(c.len() < data.len() / 10, "{} vs {}", c.len(), data.len());
        assert_eq!(snappy_decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_grows_slightly() {
        let data: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let c = snappy_compress(&data);
        assert_eq!(snappy_decompress(&c).unwrap(), data);
        assert!(c.len() <= data.len() + data.len() / 32 + 16);
    }

    #[test]
    fn tiny_inputs() {
        for data in [&b""[..], b"a", b"ab", b"abc", b"abcd"] {
            let c = snappy_compress(data);
            assert_eq!(snappy_decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn long_runs_use_chunked_copies() {
        let data = vec![b'x'; 100_000];
        let c = snappy_compress(&data);
        // Copies cap at 64 bytes → ~3 bytes per 64-byte chunk.
        assert!(c.len() < 6000, "len = {}", c.len());
        assert_eq!(snappy_decompress(&c).unwrap(), data);
    }

    #[test]
    fn rejects_bad_offset() {
        // Varint length 4, then a copy reaching before the start.
        let bad = vec![4u8, 0b01, 0x05];
        assert_eq!(snappy_decompress(&bad), Err(SnappyError::BadOffset));
    }

    #[test]
    fn rejects_truncation() {
        let data = b"hello hello hello hello";
        let c = snappy_compress(data);
        for cut in 1..c.len() - 1 {
            // Either a hard error or a length mismatch — never a panic or
            // a silent wrong answer of the right length.
            if let Ok(out) = snappy_decompress(&c[..cut]) {
                assert_ne!(out.len(), data.len());
            }
        }
    }

    #[test]
    fn every_error_variant_is_constructible_from_bytes() {
        // Truncated: stream ends inside the length varint.
        assert_eq!(snappy_decompress(&[0x80]), Err(SnappyError::Truncated));
        // Truncated: literal promises more bytes than remain.
        assert_eq!(
            snappy_decompress(&[4, 60 << 2]),
            Err(SnappyError::Truncated)
        );
        // Truncated: copy tag with missing offset bytes.
        assert_eq!(snappy_decompress(&[4, 0b10]), Err(SnappyError::Truncated));
        assert_eq!(snappy_decompress(&[4, 0b11]), Err(SnappyError::Truncated));
        // BadOffset: offset reaches before the output start.
        assert_eq!(
            snappy_decompress(&[4, 0b01, 0x05]),
            Err(SnappyError::BadOffset)
        );
        // BadOffset: zero offset.
        assert_eq!(
            snappy_decompress(&[4, 0, b'x', 0b10, 0, 0]),
            Err(SnappyError::BadOffset)
        );
        // LengthMismatch: header says 4, body provides 1.
        assert_eq!(
            snappy_decompress(&[4, 0, b'x']),
            Err(SnappyError::LengthMismatch {
                expected: 4,
                actual: 1
            })
        );
        // BadVarint: 10 continuation bytes.
        assert_eq!(snappy_decompress(&[0x80; 11]), Err(SnappyError::BadVarint));
    }

    #[test]
    fn huge_declared_length_does_not_reserve_huge() {
        // Header declares ~4 GB; the 3-byte stream can never produce
        // it. Before the allocation cap this call would try to reserve
        // 4 GB up front.
        let mut bad = vec![0xFF, 0xFF, 0xFF, 0xFF, 0x0F]; // varint ≈ 2^32
        bad.extend_from_slice(&[0, b'x']); // one 1-byte literal
        match snappy_decompress(&bad) {
            Err(SnappyError::LengthMismatch { .. }) | Err(SnappyError::Truncated) => {}
            other => panic!("expected typed error, got {other:?}"),
        }
    }

    #[test]
    fn over_length_body_bails_early() {
        // Header says 1 byte, body emits many: the decoder must stop
        // with LengthMismatch instead of decoding the whole stream.
        let mut bad = vec![1u8];
        for _ in 0..50 {
            bad.extend_from_slice(&[(3 << 2), b'a', b'b', b'c', b'd']);
        }
        let err = snappy_decompress(&bad).unwrap_err();
        assert!(matches!(
            err,
            SnappyError::LengthMismatch { expected: 1, .. }
        ));
    }

    proptest! {
        #[test]
        fn prop_arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            // Decode result is irrelevant; the contract is a clean
            // Result on every input.
            let _ = snappy_decompress(&data);
        }

        #[test]
        fn prop_corrupted_valid_streams_never_panic(
            data in proptest::collection::vec(any::<u8>(), 1..1500),
            flip_pos in any::<u16>(),
            flip_bit in any::<u8>(),
            cut in any::<u16>(),
        ) {
            let mut c = snappy_compress(&data);
            let i = usize::from(flip_pos) % c.len();
            c[i] ^= 1 << (flip_bit % 8);
            c.truncate(usize::from(cut) % (c.len() + 1));
            let _ = snappy_decompress(&c);
        }

        #[test]
        fn prop_round_trip_random(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
            let c = snappy_compress(&data);
            prop_assert_eq!(snappy_decompress(&c).unwrap(), data);
        }

        #[test]
        fn prop_round_trip_lowentropy(data in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 0..4000)) {
            let c = snappy_compress(&data);
            prop_assert_eq!(snappy_decompress(&c).unwrap(), &data[..]);
            if data.len() > 200 {
                prop_assert!(c.len() < data.len());
            }
        }
    }
}

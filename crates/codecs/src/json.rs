//! JSON tokenization and validation (Table 1 lists JSON among UDP's
//! parsing targets; this is the CPU baseline and functional oracle).
//!
//! Two modes:
//!
//! * **strict** — escapes fully decoded (including `\uXXXX` to UTF-8),
//!   numbers validated against the JSON grammar;
//! * **compat** — the framing the UDP tokenizer program produces:
//!   `\uXXXX` kept raw, numbers kept as their lexical text. Used for
//!   UDP-vs-CPU equivalence checks.

use std::fmt;

/// A JSON token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonToken {
    /// `{`
    ObjOpen,
    /// `}`
    ObjClose,
    /// `[`
    ArrOpen,
    /// `]`
    ArrClose,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// A string's decoded (strict) or compat-raw content bytes.
    Str(Vec<u8>),
    /// A number's lexical text.
    Num(Vec<u8>),
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
}

/// Tokenizer/validator failure with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// The streaming tokenizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonTokenizer {
    /// Compat mode: keep `\uXXXX` raw and skip number-grammar checks.
    pub compat: bool,
}

impl JsonTokenizer {
    /// A strict tokenizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The UDP-framing-compatible tokenizer.
    pub fn compat() -> Self {
        JsonTokenizer { compat: true }
    }

    /// Tokenizes `input`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on lexical errors (bad escapes, bare
    /// words, unterminated strings).
    pub fn tokenize(&self, input: &[u8]) -> Result<Vec<JsonToken>, JsonError> {
        let mut out = Vec::new();
        let mut i = 0usize;
        let err = |pos: usize, m: &str| JsonError {
            pos,
            message: m.to_string(),
        };
        while i < input.len() {
            let b = input[i];
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => i += 1,
                b'{' => {
                    out.push(JsonToken::ObjOpen);
                    i += 1;
                }
                b'}' => {
                    out.push(JsonToken::ObjClose);
                    i += 1;
                }
                b'[' => {
                    out.push(JsonToken::ArrOpen);
                    i += 1;
                }
                b']' => {
                    out.push(JsonToken::ArrClose);
                    i += 1;
                }
                b':' => {
                    out.push(JsonToken::Colon);
                    i += 1;
                }
                b',' => {
                    out.push(JsonToken::Comma);
                    i += 1;
                }
                b'"' => {
                    let (s, next) = self.string(input, i)?;
                    out.push(JsonToken::Str(s));
                    i = next;
                }
                b'-' | b'0'..=b'9' => {
                    let start = i;
                    while i < input.len()
                        && matches!(input[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                    {
                        i += 1;
                    }
                    let text = &input[start..i];
                    if !self.compat {
                        validate_number(text).map_err(|m| err(start, &m))?;
                    }
                    out.push(JsonToken::Num(text.to_vec()));
                }
                b't' => {
                    expect_word(input, i, b"true").map_err(|m| err(i, &m))?;
                    out.push(JsonToken::True);
                    i += 4;
                }
                b'f' => {
                    expect_word(input, i, b"false").map_err(|m| err(i, &m))?;
                    out.push(JsonToken::False);
                    i += 5;
                }
                b'n' => {
                    expect_word(input, i, b"null").map_err(|m| err(i, &m))?;
                    out.push(JsonToken::Null);
                    i += 4;
                }
                other => return Err(err(i, &format!("unexpected byte {:?}", other as char))),
            }
        }
        Ok(out)
    }

    fn string(&self, input: &[u8], open: usize) -> Result<(Vec<u8>, usize), JsonError> {
        let err = |pos: usize, m: &str| JsonError {
            pos,
            message: m.to_string(),
        };
        let mut s = Vec::new();
        let mut i = open + 1;
        loop {
            let Some(&b) = input.get(i) else {
                return Err(err(open, "unterminated string"));
            };
            match b {
                b'"' => return Ok((s, i + 1)),
                b'\\' => {
                    let Some(&e) = input.get(i + 1) else {
                        return Err(err(i, "dangling escape"));
                    };
                    match e {
                        b'"' => s.push(b'"'),
                        b'\\' => s.push(b'\\'),
                        b'/' => s.push(b'/'),
                        b'n' => s.push(b'\n'),
                        b't' => s.push(b'\t'),
                        b'r' => s.push(b'\r'),
                        b'b' => s.push(0x08),
                        b'f' => s.push(0x0C),
                        b'u' => {
                            if i + 6 > input.len() {
                                return Err(err(i, "truncated \\u escape"));
                            }
                            let hex = &input[i + 2..i + 6];
                            if self.compat {
                                s.extend_from_slice(b"\\u");
                                s.extend_from_slice(hex);
                            } else {
                                let cp = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| err(i, "non-ascii \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| err(i, "bad \\u escape"))?;
                                let c = char::from_u32(cp).unwrap_or('\u{FFFD}');
                                let mut buf = [0u8; 4];
                                s.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            }
                            i += 4;
                        }
                        other => return Err(err(i, &format!("bad escape \\{}", other as char))),
                    }
                    i += 2;
                }
                _ => {
                    s.push(b);
                    i += 1;
                }
            }
        }
    }
}

fn expect_word(input: &[u8], i: usize, word: &[u8]) -> Result<(), String> {
    if input[i..].starts_with(word) {
        Ok(())
    } else {
        Err(format!(
            "bare word is not {:?}",
            String::from_utf8_lossy(word)
        ))
    }
}

fn validate_number(text: &[u8]) -> Result<(), String> {
    let s = std::str::from_utf8(text).map_err(|_| "non-ascii number".to_string())?;
    s.parse::<f64>()
        .map_err(|e| format!("bad number {s:?}: {e}"))?;
    // JSON forbids leading '+', leading zeros, and trailing dots.
    if s.starts_with('+') || s.ends_with('.') {
        return Err(format!("non-JSON number {s:?}"));
    }
    let digits = s.strip_prefix('-').unwrap_or(s);
    if digits.len() > 1 && digits.starts_with('0') && !digits.starts_with("0.") {
        return Err(format!("leading zero in {s:?}"));
    }
    Ok(())
}

/// Structural validation: token stream must form a sequence of complete
/// JSON values (NDJSON-friendly: several top-level values allowed).
pub fn validate(tokens: &[JsonToken]) -> Result<usize, JsonError> {
    #[derive(PartialEq)]
    enum Ctx {
        Obj,
        Arr,
    }
    let err = |i: usize, m: &str| JsonError {
        pos: i,
        message: m.to_string(),
    };
    let mut stack: Vec<Ctx> = Vec::new();
    let mut values = 0usize;
    let mut expect_value = true;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match t {
            JsonToken::ObjOpen => {
                if !expect_value {
                    return Err(err(i, "unexpected '{'"));
                }
                stack.push(Ctx::Obj);
                // Expect a key or immediate close.
            }
            JsonToken::ArrOpen => {
                if !expect_value {
                    return Err(err(i, "unexpected '['"));
                }
                stack.push(Ctx::Arr);
            }
            JsonToken::ObjClose => {
                if stack.pop() != Some(Ctx::Obj) {
                    return Err(err(i, "unbalanced '}'"));
                }
                expect_value = false;
            }
            JsonToken::ArrClose => {
                if stack.pop() != Some(Ctx::Arr) {
                    return Err(err(i, "unbalanced ']'"));
                }
                expect_value = false;
            }
            JsonToken::Colon | JsonToken::Comma => expect_value = true,
            _ => expect_value = false,
        }
        if stack.is_empty() && !expect_value {
            values += 1;
            expect_value = true;
        }
        i += 1;
    }
    if !stack.is_empty() {
        return Err(err(tokens.len(), "unclosed container"));
    }
    Ok(values)
}

/// Serializes tokens in the UDP tokenizer's output framing: structural
/// bytes verbatim; `S`/`N` + content + `0x1F` for strings/numbers;
/// `T`/`F`/`Z` for literals.
pub fn compat_framing(tokens: &[JsonToken]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match t {
            JsonToken::ObjOpen => out.push(b'{'),
            JsonToken::ObjClose => out.push(b'}'),
            JsonToken::ArrOpen => out.push(b'['),
            JsonToken::ArrClose => out.push(b']'),
            JsonToken::Colon => out.push(b':'),
            JsonToken::Comma => out.push(b','),
            JsonToken::Str(s) => {
                out.push(b'S');
                out.extend_from_slice(s);
                out.push(0x1F);
            }
            JsonToken::Num(n) => {
                out.push(b'N');
                out.extend_from_slice(n);
                out.push(0x1F);
            }
            JsonToken::True => out.push(b'T'),
            JsonToken::False => out.push(b'F'),
            JsonToken::Null => out.push(b'Z'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<JsonToken> {
        JsonTokenizer::new().tokenize(s.as_bytes()).unwrap()
    }

    #[test]
    fn basic_object() {
        let t = toks(r#"{"a": 1, "b": [true, null]}"#);
        assert_eq!(t[0], JsonToken::ObjOpen);
        assert_eq!(t[1], JsonToken::Str(b"a".to_vec()));
        assert_eq!(t[3], JsonToken::Num(b"1".to_vec()));
        assert!(t.contains(&JsonToken::True));
        assert!(t.contains(&JsonToken::Null));
        assert_eq!(validate(&t).unwrap(), 1);
    }

    #[test]
    fn escapes_strict_vs_compat() {
        let input = br#""a\nb\u0041c""#;
        let strict = JsonTokenizer::new().tokenize(input).unwrap();
        assert_eq!(strict[0], JsonToken::Str(b"a\nbAc".to_vec()));
        let compat = JsonTokenizer::compat().tokenize(input).unwrap();
        assert_eq!(compat[0], JsonToken::Str(b"a\nb\\u0041c".to_vec()));
    }

    #[test]
    fn numbers() {
        let t = toks("[-1.5e3, 0.25, 42]");
        assert_eq!(t[1], JsonToken::Num(b"-1.5e3".to_vec()));
        assert!(JsonTokenizer::new().tokenize(b"01").is_err());
        assert!(JsonTokenizer::new().tokenize(b"+1").is_err());
        assert!(
            JsonTokenizer::compat().tokenize(b"01").is_ok(),
            "compat is lexical"
        );
    }

    #[test]
    fn lexical_errors() {
        assert!(JsonTokenizer::new().tokenize(b"\"unterminated").is_err());
        assert!(JsonTokenizer::new().tokenize(b"tru").is_err());
        assert!(JsonTokenizer::new()
            .tokenize(br#""bad \q escape""#)
            .is_err());
        assert!(JsonTokenizer::new().tokenize(b"@").is_err());
    }

    #[test]
    fn validation_catches_structure_errors() {
        let bad = toks("[1, 2");
        // tokenize succeeds lexically; structure fails.
        assert!(validate(&bad).is_err());
        let t = JsonTokenizer::new().tokenize(b"}").unwrap();
        assert!(validate(&t).is_err());
    }

    #[test]
    fn ndjson_counts_values() {
        let t = toks("{\"a\":1}\n{\"b\":2}\n[3]");
        assert_eq!(validate(&t).unwrap(), 3);
    }

    #[test]
    fn framing_round_trips_tokens() {
        let input = br#"{"k":"v","n":[1,2.5],"ok":false}"#;
        let t = JsonTokenizer::compat().tokenize(input).unwrap();
        let framed = compat_framing(&t);
        assert!(framed.starts_with(b"{Sk\x1F:Sv\x1F,"));
        assert!(framed.ends_with(b"F}"));
    }
}

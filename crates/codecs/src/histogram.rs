//! Histogramming (the GSL baseline, §4.1, §5.5).
//!
//! Bins are defined by ascending edges; value lookup is the GSL binary
//! search. The paper's experiments run 1) uniform-size bins and
//! 2) percentile bins sized from a sample, over IEEE-754 attribute
//! streams (Crimes.Latitude/Longitude, Taxi.Fare).

/// A fixed-edge histogram over `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// `n_bins + 1` ascending edges; bin `i` is `[edges[i], edges[i+1])`.
    edges: Vec<f32>,
    counts: Vec<u64>,
    /// Values outside `[edges[0], edges[n])`.
    outliers: u64,
}

impl Histogram {
    /// A histogram with explicit ascending edges.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two edges are given or they are not strictly
    /// ascending.
    pub fn with_edges(edges: Vec<f32>) -> Histogram {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let bins = edges.len() - 1;
        Histogram {
            edges,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// `n` uniform bins over `[lo, hi)`.
    pub fn uniform(lo: f32, hi: f32, n: usize) -> Histogram {
        assert!(n >= 1 && hi > lo);
        let step = (hi - lo) / n as f32;
        let mut edges: Vec<f32> = (0..=n).map(|i| lo + step * i as f32).collect();
        // Guard against FP rounding producing a non-ascending tail.
        edges[n] = hi;
        Histogram::with_edges(edges)
    }

    /// Percentile (equi-depth) bins estimated from a sample — the
    /// "non-uniform size based on sampling" variant of §4.1.
    pub fn percentile(sample: &[f32], n: usize) -> Histogram {
        assert!(n >= 1 && !sample.is_empty());
        let mut s: Vec<f32> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        s.sort_by(f32::total_cmp);
        let mut edges = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let idx = (i * (s.len() - 1)) / n;
            edges.push(s[idx]);
        }
        // Widen the last edge so the max lands inside, and dedupe.
        edges.dedup_by(|a, b| a == b);
        if edges.len() < 2 {
            edges.push(edges[0] + 1.0);
        }
        let last = edges.len() - 1;
        edges[last] = f32::from_bits(edges[last].to_bits() + 1);
        Histogram::with_edges(edges)
    }

    /// GSL-style binary-search bin lookup.
    pub fn bin_of(&self, v: f32) -> Option<usize> {
        let n = self.edges.len() - 1;
        if !(v >= self.edges[0] && v < self.edges[n]) {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = n;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if v >= self.edges[mid] {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Accumulates one value.
    pub fn add(&mut self, v: f32) {
        match self.bin_of(v) {
            Some(b) => self.counts[b] += 1,
            None => self.outliers += 1,
        }
    }

    /// Accumulates a slice.
    pub fn add_all(&mut self, values: &[f32]) {
        for &v in values {
            self.add(v);
        }
    }

    /// Accumulates values from their little-endian IEEE-754 byte stream
    /// (the comparison-rate entry point: input measured in bytes).
    pub fn add_le_bytes(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks_exact(4) {
            self.add(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of out-of-range values.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Bin edges.
    pub fn edges(&self) -> &[f32] {
        &self.edges
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_binning() {
        let mut h = Histogram::uniform(0.0, 10.0, 10);
        h.add_all(&[0.0, 0.5, 5.0, 9.99]);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    fn outliers_counted() {
        let mut h = Histogram::uniform(0.0, 1.0, 4);
        h.add_all(&[-0.1, 1.0, 55.0, f32::NAN]);
        assert_eq!(h.outliers(), 4);
    }

    #[test]
    fn edge_inclusivity() {
        let h = Histogram::uniform(0.0, 4.0, 4);
        assert_eq!(h.bin_of(1.0), Some(1), "left edges are inclusive");
        assert_eq!(h.bin_of(4.0), None, "right edge is exclusive");
    }

    #[test]
    fn percentile_bins_balance_counts() {
        let sample: Vec<f32> = (0..1000).map(|i| (i as f32).sqrt()).collect();
        let mut h = Histogram::percentile(&sample, 4);
        h.add_all(&sample);
        let total: u64 = h.counts().iter().sum();
        assert!(total >= 999);
        for &c in h.counts() {
            assert!(
                c >= 150,
                "equi-depth bins should be roughly balanced: {:?}",
                h.counts()
            );
        }
    }

    #[test]
    fn byte_stream_matches_values() {
        let vals = [1.5f32, 2.5, 3.5];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut a = Histogram::uniform(0.0, 4.0, 4);
        a.add_le_bytes(&bytes);
        let mut b = Histogram::uniform(0.0, 4.0, 4);
        b.add_all(&vals);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_every_finite_value_lands_once(vals in proptest::collection::vec(-1e6f32..1e6, 0..300)) {
            let mut h = Histogram::uniform(-1e6, 1e6 + 1.0, 13);
            h.add_all(&vals);
            let total: u64 = h.counts().iter().sum::<u64>() + h.outliers();
            prop_assert_eq!(total, vals.len() as u64);
        }

        #[test]
        fn prop_binary_search_matches_linear(v in -10f32..20f32) {
            let h = Histogram::uniform(0.0, 10.0, 7);
            let linear = (0..7).find(|&i| v >= h.edges()[i] && v < h.edges()[i + 1]);
            prop_assert_eq!(h.bin_of(v), linear);
        }
    }
}

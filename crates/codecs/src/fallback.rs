//! [`ReferenceFallback`] implementations over the CPU reference codecs.
//!
//! The supervisor's second rung (DESIGN.md §8) replaces a persistently
//! faulting chunk's output with the software reference's — the CPU
//! baseline a real deployment keeps alongside the accelerator (paper
//! §6). Each implementation here is byte-equality-tested against its
//! UDP kernel in `udp-compilers`, which is what licenses the swap: on
//! any input the kernel handles, the fallback's bytes are the bytes
//! the kernel would have produced.

use crate::csv::{CsvEvent, CsvParser};
use crate::huffman::{HuffmanNode, HuffmanTree};
use crate::snappy::snappy_decompress;
use udp_sim::ReferenceFallback;

/// Software reference for the UDP CSV framing kernel
/// (`udp_compilers::csv::csv_to_udp_with`): fields' decoded bytes each
/// followed by `field_sep`, records ended by `record_sep`.
#[derive(Debug, Clone)]
pub struct CsvFramingFallback {
    /// Field delimiter byte (the kernel's `delim`).
    pub delimiter: u8,
    /// Quote byte.
    pub quote: u8,
    /// Separator emitted after every field.
    pub field_sep: u8,
    /// Separator emitted after every record.
    pub record_sep: u8,
}

impl ReferenceFallback for CsvFramingFallback {
    fn name(&self) -> &'static str {
        "csv-framing"
    }

    fn reference_output(&self, input: &[u8]) -> Result<Vec<u8>, String> {
        let mut out = Vec::with_capacity(input.len());
        CsvParser::new()
            .with_delimiter(self.delimiter)
            .parse_events(input, |e| match e {
                CsvEvent::Field(f) => {
                    out.extend_from_slice(&f);
                    out.push(self.field_sep);
                }
                CsvEvent::EndRecord => out.push(self.record_sep),
            });
        Ok(out)
    }
}

/// Software reference for the UDP Snappy decompressor: the framed
/// [`snappy_decompress`] itself.
#[derive(Debug, Clone, Default)]
pub struct SnappyFallback;

impl ReferenceFallback for SnappyFallback {
    fn name(&self) -> &'static str {
        "snappy"
    }

    fn reference_output(&self, input: &[u8]) -> Result<Vec<u8>, String> {
        snappy_decompress(input).map_err(|e| e.to_string())
    }
}

/// Software reference for the SsRef Huffman decode kernel
/// (`udp_compilers::huffman` with `SymbolMode::RegisterRefill`).
///
/// This is deliberately *not* a plain bit-by-bit decode: it reproduces
/// the kernel's W-bit dispatch discipline — decoding stops when fewer
/// than `stride` bits remain at a dispatch, and padding-induced
/// spurious trailing symbols are kept — so its output is byte-identical
/// to the kernel's raw (untruncated) output on the same padded stream.
#[derive(Debug, Clone)]
pub struct HuffmanSsRefFallback {
    tree: HuffmanTree,
    stride: u8,
}

impl HuffmanSsRefFallback {
    /// A fallback for `tree` decoded at the global SsRef `stride`
    /// (`udp_compilers::huffman::ssref_stride`).
    pub fn new(tree: HuffmanTree, stride: u8) -> Self {
        HuffmanSsRefFallback { tree, stride }
    }
}

impl ReferenceFallback for HuffmanSsRefFallback {
    fn name(&self) -> &'static str {
        "huffman-ssref"
    }

    fn reference_output(&self, input: &[u8]) -> Result<Vec<u8>, String> {
        let root = self.tree.root();
        if root == u32::MAX {
            return Err("empty Huffman tree".to_string());
        }
        let nodes = self.tree.nodes();
        let total_bits = input.len() as u64 * 8;
        let stride = u64::from(self.stride.clamp(1, 8));
        let bit_at = |i: u64| (input[(i / 8) as usize] >> (7 - (i % 8))) & 1;
        let mut out = Vec::new();
        let mut node = root;
        let mut cursor = 0u64;
        // One iteration per dispatch: the kernel reads `stride` bits,
        // walks the tree within them, and a leaf at depth k triggers a
        // refill pass putting `stride - k` bits back.
        'dispatch: while total_bits - cursor >= stride {
            for k in 0..stride {
                let HuffmanNode::Internal(z, o) = nodes[node as usize] else {
                    return Err("walk reached a leaf node state".to_string());
                };
                let child = if bit_at(cursor + k) == 0 { z } else { o };
                if child == u32::MAX {
                    // Invalid prefix (single-symbol trees): the kernel
                    // has no arc for this value and stops here.
                    break 'dispatch;
                }
                if let HuffmanNode::Leaf(sym) = nodes[child as usize] {
                    out.push(sym);
                    node = root;
                    cursor += k + 1;
                    continue 'dispatch;
                }
                node = child;
            }
            cursor += stride;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csv_fallback() -> CsvFramingFallback {
        CsvFramingFallback {
            delimiter: b',',
            quote: b'"',
            field_sep: 0x1F,
            record_sep: 0x1E,
        }
    }

    #[test]
    fn csv_framing_emits_separators() {
        let out = csv_fallback().reference_output(b"a,bb\nx,y\n").unwrap();
        assert_eq!(out, b"a\x1Fbb\x1F\x1Ex\x1Fy\x1F\x1E");
    }

    #[test]
    fn csv_framing_unescapes_quotes() {
        let out = csv_fallback()
            .reference_output(b"\"a,b\",\"he said \"\"hi\"\"\"\n")
            .unwrap();
        assert_eq!(out, b"a,b\x1Fhe said \"hi\"\x1F\x1E");
    }

    #[test]
    fn snappy_fallback_round_trips_and_rejects_garbage() {
        let data = b"the quick brown fox jumps over the lazy dog".repeat(20);
        let framed = crate::snappy::snappy_compress(&data);
        assert_eq!(SnappyFallback.reference_output(&framed).unwrap(), data);
        assert!(SnappyFallback.reference_output(b"\xFF\xFF\xFF").is_err());
    }

    #[test]
    fn huffman_ssref_decodes_its_own_encoding() {
        let data = b"abracadabra alakazam";
        let tree = HuffmanTree::from_data(data);
        let (bits, nbits) = tree.encode(data);
        // Max code length bounds the SsRef stride the compiler derives.
        let stride = tree.max_len().clamp(1, 8);
        // Pad like pad_for_stride: stride extra bits of zeros.
        let need = (nbits + u64::from(stride)).div_ceil(8) as usize;
        let mut padded = bits.clone();
        padded.resize(need.max(bits.len()), 0);
        let fb = HuffmanSsRefFallback::new(tree, stride);
        let out = fb.reference_output(&padded).unwrap();
        // Padding may append spurious symbols; the real payload leads.
        assert!(out.len() >= data.len());
        assert_eq!(&out[..data.len()], data);
    }
}

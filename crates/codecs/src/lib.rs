//! # udp-codecs — CPU reference implementations of the paper's kernels
//!
//! Every comparison in the paper pits a UDP program against a CPU library
//! (Table 2): libcsv, libhuffman, Google Snappy, Parquet's dictionary
//! encoder, the GSL histogram, Boost Regex, and Keysight's trigger
//! lookup table. This crate reimplements each from scratch in Rust with
//! the same algorithmic structure, serving as:
//!
//! 1. the CPU side of every benchmark (measured wall-clock), and
//! 2. the functional oracle the UDP-compiled programs are tested against.
//!
//! The pattern-matching baseline lives in `udp-automata` (the DFA
//! table-scanner); everything else is here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-free degradation discipline (DESIGN.md §8): codecs parse
// hostile bytes, so malformed input must come back as a typed error,
// never a panic. Documented invariant panics are allowlisted locally.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bitpack;
pub mod csv;
pub mod dict;
pub mod fallback;
pub mod histogram;
pub mod huffman;
pub mod json;
pub mod rle;
pub mod snappy;
pub mod trigger;
pub mod xml;

pub use bitpack::{bitpack_decode, bitpack_encode, bits_needed};
pub use csv::{CsvEvent, CsvParser};
pub use dict::{DictRleEncoder, DictionaryEncoder};
pub use fallback::{CsvFramingFallback, HuffmanSsRefFallback, SnappyFallback};
pub use histogram::Histogram;
pub use huffman::{HuffmanCode, HuffmanTree};
pub use json::{JsonToken, JsonTokenizer};
pub use rle::{rle_decode, rle_encode, Run};
pub use snappy::{snappy_compress, snappy_decompress, SnappyError};
pub use trigger::{TriggerFsm, TriggerLut};
pub use xml::{XmlToken, XmlTokenizer};

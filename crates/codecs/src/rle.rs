//! Run-length encoding over arbitrary `Eq` values.

/// One run: `length` repetitions of `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run<T> {
    /// The repeated value.
    pub value: T,
    /// Repetition count (≥ 1).
    pub length: u32,
}

/// Run-length encodes a slice.
pub fn rle_encode<T: Eq + Clone>(values: &[T]) -> Vec<Run<T>> {
    let mut runs: Vec<Run<T>> = Vec::new();
    for v in values {
        match runs.last_mut() {
            Some(r) if r.value == *v && r.length < u32::MAX => r.length += 1,
            _ => runs.push(Run {
                value: v.clone(),
                length: 1,
            }),
        }
    }
    runs
}

/// Expands runs back to a flat vector.
pub fn rle_decode<T: Clone>(runs: &[Run<T>]) -> Vec<T> {
    let mut out = Vec::new();
    for r in runs {
        for _ in 0..r.length {
            out.push(r.value.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_basic() {
        let runs = rle_encode(&[1, 1, 2, 3, 3, 3]);
        assert_eq!(runs.len(), 3);
        assert_eq!(
            runs[2],
            Run {
                value: 3,
                length: 3
            }
        );
    }

    #[test]
    fn empty() {
        assert!(rle_encode::<u8>(&[]).is_empty());
        assert!(rle_decode::<u8>(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_round_trip(vals in proptest::collection::vec(0u8..4, 0..200)) {
            prop_assert_eq!(rle_decode(&rle_encode(&vals)), vals);
        }

        #[test]
        fn prop_adjacent_runs_differ(vals in proptest::collection::vec(0u8..3, 0..200)) {
            let runs = rle_encode(&vals);
            for w in runs.windows(2) {
                prop_assert_ne!(w[0].value, w[1].value);
            }
        }
    }
}

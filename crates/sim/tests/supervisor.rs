//! Supervision-layer contracts (DESIGN.md §8): transient faults
//! recover to a bit-identical run, quarantine isolates exactly one
//! chunk, the fallback rung swaps in reference bytes, and differential
//! mode cross-checks clean chunks — all identically on the sequential
//! and pooled paths.

use proptest::prelude::*;
use std::sync::Arc;
use udp_asm::{LayoutOptions, ProgramBuilder, Target};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;
use udp_sim::engine::Staging;
use udp_sim::{
    ChunkOutcome, ExecBackend, FaultKind, LaneConfig, LaneStatus, ReferenceFallback,
    SupervisorOptions, Udp, UdpRunOptions, UdpRunReport,
};

/// One-state scanner: emits `!` for every `a` byte.
fn scanner() -> udp_asm::ProgramImage {
    let mut b = ProgramBuilder::new();
    let s = b.add_consuming_state();
    b.set_entry(s);
    b.labeled_arc(
        s,
        b'a' as u16,
        Target::State(s),
        vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, b'!' as u16)],
    );
    b.fallback_arc(s, Target::State(s), vec![]);
    b.assemble(&LayoutOptions::default()).unwrap()
}

/// The scanner's reference output: one `!` per `a`.
#[derive(Debug)]
struct ScannerReference;

impl ReferenceFallback for ScannerReference {
    fn name(&self) -> &'static str {
        "scanner-reference"
    }

    fn reference_output(&self, input: &[u8]) -> Result<Vec<u8>, String> {
        Ok(input.iter().filter(|&&b| b == b'a').map(|_| b'!').collect())
    }
}

/// A reference that is deliberately wrong on every chunk.
#[derive(Debug)]
struct LyingReference;

impl ReferenceFallback for LyingReference {
    fn name(&self) -> &'static str {
        "lying-reference"
    }

    fn reference_output(&self, _input: &[u8]) -> Result<Vec<u8>, String> {
        Ok(b"wrong".to_vec())
    }
}

fn run(image: &udp_asm::ProgramImage, inputs: &[&[u8]], opts: &UdpRunOptions) -> UdpRunReport {
    Udp::new()
        .try_run_data_parallel(image, inputs, &Staging::default(), opts)
        .expect("pre-flight config is valid")
}

/// Runs `f` with the default panic hook silenced (deliberate chaos
/// panics would otherwise spray backtraces over the test output).
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(hook);
    r
}

fn supervise_base() -> SupervisorOptions {
    SupervisorOptions {
        backoff_base_ms: 0,
        ..SupervisorOptions::default()
    }
}

#[test]
fn transient_fault_recovers_to_a_bit_identical_report() {
    let img = scanner();
    let long: Vec<u8> = vec![b'a'; 300];
    let inputs: Vec<&[u8]> = vec![b"aa", &long, b"aba"];
    let clean = run(&img, &inputs, &UdpRunOptions::default());

    for inject_panic in [false, true] {
        for parallel in [false, true] {
            let opts = UdpRunOptions {
                parallel,
                lane: LaneConfig {
                    chaos_panic_at: if inject_panic { Some(100) } else { None },
                    chaos_fault_at: if inject_panic { None } else { Some(100) },
                    chaos_transient: true,
                    ..LaneConfig::default()
                },
                supervise: Some(supervise_base()),
                ..UdpRunOptions::default()
            };
            let rep = quietly(|| run(&img, &inputs, &opts));
            assert_eq!(
                rep.health.outcomes,
                vec![
                    ChunkOutcome::Clean,
                    ChunkOutcome::Recovered { attempts: 1 },
                    ChunkOutcome::Clean
                ],
                "inject_panic={inject_panic} parallel={parallel}"
            );
            // Everything except health is the clean run, bit for bit.
            let mut scrubbed = rep.clone();
            scrubbed.health = clean.health.clone();
            assert_eq!(scrubbed, clean, "inject_panic={inject_panic}");
            assert_eq!(rep.health.fault_histogram.len(), 1);
        }
    }
}

#[test]
fn compiled_backend_climbs_the_recovery_ladder_identically() {
    // The supervisor must be backend-blind: retry and fallback rungs
    // exercised through the compiled path land on the same outcomes and
    // the same bytes as an interpreter run (DESIGN.md §2.6.3).
    let img = scanner();
    let long: Vec<u8> = vec![b'a'; 300];
    let inputs: Vec<&[u8]> = vec![b"aa", &long, b"aba"];
    let clean = run(
        &img,
        &inputs,
        &UdpRunOptions {
            backend: ExecBackend::Interpreter,
            ..UdpRunOptions::default()
        },
    );

    // Retry rung: a transient chaos fault recovers to the clean run.
    let retry = UdpRunOptions {
        backend: ExecBackend::Compiled,
        lane: LaneConfig {
            chaos_fault_at: Some(100),
            chaos_transient: true,
            ..LaneConfig::default()
        },
        supervise: Some(supervise_base()),
        ..UdpRunOptions::default()
    };
    let rep = run(&img, &inputs, &retry);
    assert_eq!(
        rep.health.outcomes,
        vec![
            ChunkOutcome::Clean,
            ChunkOutcome::Recovered { attempts: 1 },
            ChunkOutcome::Clean
        ]
    );
    let mut scrubbed = rep.clone();
    scrubbed.health = clean.health.clone();
    assert_eq!(scrubbed, clean, "compiled retry rung diverged");

    // Fallback rung: a persistent fault lands on the reference bytes.
    let fallback = UdpRunOptions {
        backend: ExecBackend::Compiled,
        lane: LaneConfig {
            chaos_fault_at: Some(100),
            ..LaneConfig::default()
        },
        supervise: Some(SupervisorOptions {
            fallback: Some(Arc::new(ScannerReference)),
            ..supervise_base()
        }),
        ..UdpRunOptions::default()
    };
    let rep = run(&img, &inputs, &fallback);
    assert_eq!(rep.health.outcomes[1], ChunkOutcome::Fallback);
    assert_eq!(rep.lanes[1].output, vec![b'!'; 300]);
    assert_eq!(rep.health.quarantined(), 0);
}

#[test]
fn quarantined_chunk_leaves_sibling_outputs_untouched() {
    let img = scanner();
    let long: Vec<u8> = vec![b'a'; 300];
    let inputs: Vec<&[u8]> = vec![b"aa", &long, b"aaa"];
    let clean = run(&img, &inputs, &UdpRunOptions::default());

    // Persistent chaos fault, no fallback registered: both ladder rungs
    // fail and the chunk must quarantine with its output dropped.
    let opts = UdpRunOptions {
        lane: LaneConfig {
            chaos_fault_at: Some(100),
            ..LaneConfig::default()
        },
        supervise: Some(SupervisorOptions {
            max_retries: 1,
            ..supervise_base()
        }),
        ..UdpRunOptions::default()
    };
    let rep = run(&img, &inputs, &opts);
    match &rep.health.outcomes[1] {
        ChunkOutcome::Quarantined(reason) => {
            assert!(matches!(reason.fault, FaultKind::ChaosInjected { .. }));
            assert_eq!(reason.fallback_error, None);
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    assert!(rep.lanes[1].output.is_empty(), "partial output is dropped");
    assert!(matches!(rep.lanes[1].status, LaneStatus::Fault(_)));
    // Siblings are exactly the clean run's chunks.
    for i in [0usize, 2] {
        assert_eq!(rep.health.outcomes[i], ChunkOutcome::Clean);
        assert_eq!(rep.lanes[i], clean.lanes[i], "sibling {i} untouched");
    }
    assert_eq!(
        rep.concat_output(),
        b"aa"
            .iter()
            .map(|_| b'!')
            .chain(b"aaa".iter().map(|_| b'!'))
            .collect::<Vec<_>>()
    );
}

#[test]
fn persistent_fault_lands_on_the_reference_fallback() {
    let img = scanner();
    let long: Vec<u8> = vec![b'a'; 300];
    let inputs: Vec<&[u8]> = vec![b"aa", &long, b"aaa"];
    let opts = UdpRunOptions {
        lane: LaneConfig {
            chaos_fault_at: Some(100),
            ..LaneConfig::default()
        },
        supervise: Some(SupervisorOptions {
            fallback: Some(Arc::new(ScannerReference)),
            ..supervise_base()
        }),
        ..UdpRunOptions::default()
    };
    let rep = run(&img, &inputs, &opts);
    assert_eq!(rep.health.outcomes[1], ChunkOutcome::Fallback);
    assert_eq!(rep.lanes[1].output, vec![b'!'; 300], "reference bytes");
    assert_eq!(rep.lanes[1].bytes_consumed, 300);
    // The whole run's concatenated output equals the reference's view.
    assert_eq!(rep.concat_output(), vec![b'!'; 2 + 300 + 3]);
    assert_eq!(rep.health.quarantined(), 0);
}

#[test]
fn differential_mode_cross_checks_clean_chunks() {
    let img = scanner();
    let inputs: Vec<&[u8]> = vec![b"aa", b"aba", b"bb"];

    let honest = UdpRunOptions {
        supervise: Some(SupervisorOptions {
            fallback: Some(Arc::new(ScannerReference)),
            differential: true,
            ..supervise_base()
        }),
        ..UdpRunOptions::default()
    };
    let rep = run(&img, &inputs, &honest);
    assert_eq!(rep.health.differential_checked, 3);
    assert_eq!(rep.health.differential_mismatches, 0);

    let lying = UdpRunOptions {
        supervise: Some(SupervisorOptions {
            fallback: Some(Arc::new(LyingReference)),
            differential: true,
            ..supervise_base()
        }),
        ..UdpRunOptions::default()
    };
    let rep = run(&img, &inputs, &lying);
    assert_eq!(rep.health.differential_checked, 3);
    assert_eq!(rep.health.differential_mismatches, 3);
}

#[test]
fn supervision_on_clean_inputs_changes_nothing_but_health() {
    let img = scanner();
    let inputs: Vec<&[u8]> = vec![b"aa", b"ab", b"ba", b"bb"];
    let clean = run(&img, &inputs, &UdpRunOptions::default());
    for parallel in [false, true] {
        let opts = UdpRunOptions {
            parallel,
            supervise: Some(supervise_base()),
            ..UdpRunOptions::default()
        };
        let rep = run(&img, &inputs, &opts);
        let mut scrubbed = rep.clone();
        scrubbed.health = clean.health.clone();
        assert_eq!(scrubbed, clean, "parallel={parallel}");
        assert_eq!(rep.health.clean(), 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Transient faults + retries reproduce the clean run bit for bit
    /// (everything except the health section), sequentially and pooled,
    /// on both execution backends, for random chunk shapes and
    /// injection points. The clean reference is always the interpreter,
    /// so a compiled draw also proves cross-backend bit-identity of the
    /// recovered run.
    #[test]
    fn prop_transient_faults_preserve_clean_run_output(
        chunks in proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 0..400), 1..8),
        chaos_at in 20u64..200,
        inject_panic in any::<bool>(),
        parallel in any::<bool>(),
        compiled in any::<bool>(),
    ) {
        let img = scanner();
        let inputs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
        let clean = run(&img, &inputs, &UdpRunOptions {
            backend: ExecBackend::Interpreter,
            ..UdpRunOptions::default()
        });
        let opts = UdpRunOptions {
            parallel,
            backend: if compiled { ExecBackend::Compiled } else { ExecBackend::Interpreter },
            lane: LaneConfig {
                chaos_panic_at: if inject_panic { Some(chaos_at) } else { None },
                chaos_fault_at: if inject_panic { None } else { Some(chaos_at) },
                chaos_transient: true,
                ..LaneConfig::default()
            },
            supervise: Some(supervise_base()),
            ..UdpRunOptions::default()
        };
        let rep = quietly(|| run(&img, &inputs, &opts));
        let mut scrubbed = rep.clone();
        scrubbed.health = clean.health.clone();
        prop_assert_eq!(scrubbed, clean);
        prop_assert_eq!(rep.health.quarantined(), 0);
        prop_assert_eq!(
            rep.health.clean() + rep.health.recovered(),
            inputs.len() as u64
        );
    }
}

//! Pool-vs-sequential determinism: the persistent worker pool must
//! reproduce the sequential execution path field-for-field — same
//! [`UdpRunReport`] (cycles, stalls, refs, outputs, reports, registers)
//! for every program, chunk count, and staging. Host scheduling is a
//! speed knob, never a semantics knob.

use proptest::prelude::*;
use udp_asm::{LayoutOptions, ProgramBuilder, Target};
use udp_isa::action::{Action, Opcode};
use udp_isa::Reg;
use udp_sim::engine::Staging;
use udp_sim::{LaneConfig, LaneStatus, Udp, UdpRunOptions};

/// A small random scanner: `n_states` consuming states in a ring, each
/// with a few labeled arcs (symbol, action flavor) and a fallback arc
/// back into the ring. Every generated program assembles into one bank.
fn build_program(n_states: usize, arcs: &[(u8, u8)]) -> udp_asm::ProgramImage {
    let mut b = ProgramBuilder::new();
    let states: Vec<_> = (0..n_states.max(1))
        .map(|_| b.add_consuming_state())
        .collect();
    b.set_entry(states[0]);
    let mut used = std::collections::HashSet::new();
    for (i, &(sym, flavor)) in arcs.iter().enumerate() {
        if !used.insert((i % states.len(), sym)) {
            continue; // one labeled arc per (state, symbol)
        }
        let from = states[i % states.len()];
        let to = states[(i + 1) % states.len()];
        let actions = match flavor % 6 {
            0 => vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, u16::from(sym))],
            1 => vec![Action::imm(
                Opcode::Report,
                Reg::R0,
                Reg::R0,
                u16::from(flavor),
            )],
            2 => vec![
                Action::imm(Opcode::MovI, Reg::new(1), Reg::R0, 2048 + u16::from(sym)),
                Action::imm(Opcode::LoadB, Reg::new(2), Reg::new(1), 0),
                Action::imm(Opcode::EmitB, Reg::R0, Reg::new(2), 0),
            ],
            3 => vec![Action::imm(
                Opcode::BumpW,
                Reg::new(3),
                Reg::new(12),
                1024 + u16::from(sym & 0x3F) * 4,
            )],
            4 => vec![Action::imm(Opcode::EmitW, Reg::R0, Reg::new(3), 0)],
            _ => vec![],
        };
        b.labeled_arc(from, u16::from(sym), Target::State(to), actions);
    }
    for &s in &states {
        b.fallback_arc(s, Target::State(s), vec![]);
    }
    b.assemble(&LayoutOptions::default())
        .expect("small scanner fits one bank")
}

/// Runs the same workload through the sequential path and the pool and
/// asserts report equality plus final lane-window equality.
fn assert_pool_matches_sequential(
    image: &udp_asm::ProgramImage,
    inputs: &[&[u8]],
    staging: &Staging,
) {
    let base = UdpRunOptions::default();
    let mut seq_udp = Udp::new();
    let seq = seq_udp.run_data_parallel(image, inputs, staging, &base);
    let mut pool_udp = Udp::new();
    let pooled = pool_udp.run_data_parallel(
        image,
        inputs,
        staging,
        &UdpRunOptions {
            parallel: true,
            ..base
        },
    );
    assert_eq!(seq, pooled, "pooled report diverged from sequential");
    let lanes = pooled.lanes_used.max(1).min(inputs.len());
    for lane in 0..lanes {
        assert_eq!(
            seq_udp.read_lane_bytes(lane, 1, 0, 4096),
            pool_udp.read_lane_bytes(lane, 1, 0, 4096),
            "device window {lane} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random program × random inputs × the chunk counts that straddle
    /// the wave boundary (0, 1, 63, 64, 65, 200) × random staging.
    #[test]
    fn prop_pooled_equals_sequential(
        n_states in 1usize..4,
        arcs in proptest::collection::vec((0u8..8, any::<u8>()), 1..10),
        chunk_sel in 0usize..6,
        seed_input in proptest::collection::vec(0u8..8, 0..24),
        stage_byte in any::<u8>(),
        stage_reg in 0u32..1000,
    ) {
        let image = build_program(n_states, &arcs);
        let n_chunks = [0usize, 1, 63, 64, 65, 200][chunk_sel];
        // Vary the chunks so different lanes do different work: rotate
        // the seed input by the chunk index.
        let chunks: Vec<Vec<u8>> = (0..n_chunks)
            .map(|i| {
                let mut v = seed_input.clone();
                v.rotate_left(i % seed_input.len().max(1));
                if i % 3 == 0 { v.push((i % 8) as u8); }
                v
            })
            .collect();
        let inputs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
        let staging = Staging {
            segments: vec![(2048, vec![stage_byte; 16])],
            regs: vec![(Reg::new(3), stage_reg)],
        };
        assert_pool_matches_sequential(&image, &inputs, &staging);
    }
}

/// The chaos-panic degradation contract, re-run through the pool: the
/// poisoned chunks (long inputs crossing the chaos threshold) must come
/// back as `Fault` reports while every sibling chunk — including ones
/// the same pool worker ran after the panic — survives with clean
/// state.
#[test]
fn chaos_panics_degrade_through_the_pool() {
    let image = build_program(1, &[(1, 0)]); // emits on symbol 1
    let short: Vec<u8> = vec![1; 8];
    let long: Vec<u8> = vec![1; 300];
    // Poisoned chunks scattered so a pool worker hits ok → fault → ok.
    let chunks: Vec<&[u8]> = vec![&short, &long, &short, &short, &long, &short, &long, &short];
    let opts = UdpRunOptions {
        parallel: true,
        lane: LaneConfig {
            chaos_panic_at: Some(100),
            ..Default::default()
        },
        ..Default::default()
    };
    // Silence the default panic hook for the deliberate panics, then
    // restore it so unrelated test failures keep their messages.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let rep = Udp::new().try_run_data_parallel(&image, &chunks, &Staging::default(), &opts);
    std::panic::set_hook(hook);
    let rep = rep.expect("pre-flight config is valid");
    assert_eq!(rep.lanes.len(), 8);
    for (i, lane) in rep.lanes.iter().enumerate() {
        if chunks[i].len() > 100 {
            assert!(
                matches!(
                    &lane.status,
                    LaneStatus::Fault(udp_sim::FaultKind::HostPanic(m)) if m.contains("chaos")
                ),
                "chunk {i} should have faulted: {:?}",
                lane.status
            );
            assert_eq!(lane.cycles, 0, "faulted chunk reports zero counters");
        } else {
            assert_eq!(lane.status, LaneStatus::InputExhausted, "chunk {i}");
            assert_eq!(lane.output, vec![1u8; 8], "chunk {i} output survives");
        }
    }
}

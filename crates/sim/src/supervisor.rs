//! Chunk supervision: the retry → fallback → quarantine recovery
//! ladder over the persistent lane pool (DESIGN.md §8).
//!
//! A chunk that ends in [`LaneStatus::Fault`] is not silently dropped
//! from the run anymore. When a [`SupervisorOptions`] is attached to
//! [`crate::UdpRunOptions::supervise`], the engine hands the per-chunk
//! reports to [`supervise`], which walks them in chunk order and climbs
//! the ladder for each faulted chunk:
//!
//! 1. **Retry.** The chunk is re-executed from its original staging on
//!    a fresh [`pool::LaneSlot`] — the same reset/replay machinery both
//!    execution paths use, so a replay is bit-identical to a first
//!    attempt. Attempts are bounded ([`SupervisorOptions::max_retries`])
//!    with a capped host-side backoff between them. Transient chaos
//!    hooks ([`LaneConfig::chaos_transient`]) are disarmed on replay,
//!    modeling soft errors that do not recur.
//! 2. **Fallback.** If every replay re-faults, a registered software
//!    [`ReferenceFallback`] (the CPU reference codec the paper's §6
//!    baselines keep deployed) produces the chunk's output instead.
//! 3. **Quarantine.** Only when both rungs fail is the chunk
//!    quarantined with a structured [`QuarantineReason`]; its partial
//!    output is dropped so no half-written bytes leak into
//!    [`crate::UdpRunReport::concat_output`], and every sibling chunk
//!    is untouched — a poisoned chunk degrades one chunk, never the
//!    run.
//!
//! The ladder is deterministic for deterministic faults: replays of a
//! persistent fault re-fault identically (same [`FaultKind`]), so the
//! final [`RunHealth`] depends only on (image, staging, inputs,
//! config) — never on host scheduling. With
//! [`SupervisorOptions::differential`] set, the fallback doubles as a
//! continuous correctness oracle: clean chunks are cross-checked
//! byte-for-byte against the reference output.

use crate::error::FaultKind;
use crate::lane::{LaneConfig, LaneReport, LaneStatus};
use crate::pool::{self, RunParams, WindowSnapshot};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A software reference implementation of the kernel a program image
/// was compiled from — the CPU baseline path a real deployment keeps
/// (paper §6). Implementations live next to the codecs
/// (`udp_codecs::fallback`); the contract is byte-equality with the
/// UDP kernel's output on every input the kernel handles.
pub trait ReferenceFallback: Send + Sync {
    /// Stable name for reports and health summaries.
    fn name(&self) -> &'static str;

    /// Computes the reference output for one chunk's input bytes.
    /// `Err` means the reference itself cannot process the chunk
    /// (corrupt input) — the supervisor then quarantines.
    fn reference_output(&self, input: &[u8]) -> Result<Vec<u8>, String>;
}

/// Configuration of the supervision ladder.
///
/// Validate with [`SupervisorOptions::validate`] before use; the engine
/// does so in its pre-flight, so a self-contradictory config is a typed
/// [`SimError::SupervisorConfig`](crate::SimError::SupervisorConfig)
/// before any lane runs.
#[derive(Clone)]
pub struct SupervisorOptions {
    /// Replay attempts per faulted chunk before falling back.
    ///
    /// `0` skips the retry rung entirely: a faulted chunk goes straight
    /// to the fallback (or quarantine when no fallback is registered).
    /// That is a legitimate configuration for deterministic faults —
    /// replaying a persistent fault burns time to learn nothing — not a
    /// degenerate one, so `validate` accepts it.
    pub max_retries: u32,
    /// Base of the capped exponential backoff between replays, in
    /// milliseconds (`min(cap, base << attempt)` before attempt `n`).
    /// Zero disables sleeping entirely (tests).
    pub backoff_base_ms: u64,
    /// Ceiling of the backoff, milliseconds.
    pub backoff_cap_ms: u64,
    /// The software reference decoder to fall back to when replays
    /// keep faulting. `None` skips the fallback rung entirely.
    pub fallback: Option<Arc<dyn ReferenceFallback>>,
    /// Cross-check every *clean* chunk's output byte-for-byte against
    /// the reference fallback (requires `fallback`), recording
    /// mismatches in [`RunHealth`]. Turns the fallback into a
    /// continuous correctness oracle, at the cost of one software
    /// decode per chunk.
    pub differential: bool,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            max_retries: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 16,
            fallback: None,
            differential: false,
        }
    }
}

impl SupervisorOptions {
    /// Checks the options for internal contradictions.
    ///
    /// Rejects `backoff_cap_ms < backoff_base_ms`: every backoff value
    /// would clamp straight to the cap, so the exponential schedule the
    /// caller configured would silently never happen. (With
    /// `backoff_base_ms == 0` sleeping is disabled and the cap is
    /// irrelevant, so that always passes.)
    pub fn validate(&self) -> Result<(), crate::error::SimError> {
        if self.backoff_base_ms > 0 && self.backoff_cap_ms < self.backoff_base_ms {
            return Err(crate::error::SimError::SupervisorConfig {
                backoff_base_ms: self.backoff_base_ms,
                backoff_cap_ms: self.backoff_cap_ms,
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for SupervisorOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisorOptions")
            .field("max_retries", &self.max_retries)
            .field("backoff_base_ms", &self.backoff_base_ms)
            .field("backoff_cap_ms", &self.backoff_cap_ms)
            .field(
                "fallback",
                &self.fallback.as_ref().map_or("none", |f| f.name()),
            )
            .field("differential", &self.differential)
            .finish()
    }
}

/// Why a chunk ended up quarantined: the fault that started the ladder
/// plus what the fallback rung said (or that there was none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineReason {
    /// The fault the chunk's final replay ended with.
    pub fault: FaultKind,
    /// The fallback's error, or `None` when no fallback was registered
    /// (including the unsupervised case, where a faulted chunk is
    /// quarantined directly).
    pub fallback_error: Option<String>,
}

/// How one chunk came through the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// Executed cleanly on the first attempt.
    Clean,
    /// Faulted, then a replay succeeded; the report is the replay's.
    Recovered {
        /// Replay attempts spent (1 = first retry succeeded).
        attempts: u32,
    },
    /// Every replay re-faulted; the output is the software reference's.
    Fallback,
    /// Both rungs failed (or supervision was off): the chunk's output
    /// is dropped and the structured reason recorded.
    Quarantined(QuarantineReason),
}

/// The health section of a [`crate::UdpRunReport`]: per-chunk outcomes
/// plus a histogram of every fault encountered (including faults that
/// were later recovered). Computed identically on the sequential and
/// pooled paths, so it participates in the bit-identical determinism
/// contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunHealth {
    /// One outcome per input chunk, in chunk order.
    pub outcomes: Vec<ChunkOutcome>,
    /// `(fault kind name, count)` over every fault the run saw —
    /// first-attempt faults and re-faulting replays alike — sorted by
    /// name. Recovered chunks still contribute their original fault.
    pub fault_histogram: Vec<(&'static str, u64)>,
    /// Clean chunks cross-checked against the reference fallback
    /// (differential mode only).
    pub differential_checked: u64,
    /// Cross-checked chunks whose UDP output differed from the
    /// reference — each one is a correctness bug in kernel or model.
    pub differential_mismatches: u64,
}

impl RunHealth {
    /// Chunks that executed cleanly first try.
    pub fn clean(&self) -> u64 {
        self.count(|o| matches!(o, ChunkOutcome::Clean))
    }

    /// Chunks recovered by replay.
    pub fn recovered(&self) -> u64 {
        self.count(|o| matches!(o, ChunkOutcome::Recovered { .. }))
    }

    /// Chunks served by the software reference fallback.
    pub fn fallback(&self) -> u64 {
        self.count(|o| matches!(o, ChunkOutcome::Fallback))
    }

    /// Chunks quarantined.
    pub fn quarantined(&self) -> u64 {
        self.count(|o| matches!(o, ChunkOutcome::Quarantined(_)))
    }

    fn count(&self, f: impl Fn(&ChunkOutcome) -> bool) -> u64 {
        self.outcomes.iter().filter(|o| f(o)).count() as u64
    }

    /// Health of an unsupervised run: faulted chunks are quarantined
    /// directly (no retry or fallback rung to climb).
    pub(crate) fn passive(reports: &[LaneReport]) -> RunHealth {
        let mut hist = Histogram::default();
        let outcomes = reports
            .iter()
            .map(|r| match &r.status {
                LaneStatus::Fault(kind) => {
                    hist.bump(kind);
                    ChunkOutcome::Quarantined(QuarantineReason {
                        fault: kind.clone(),
                        fallback_error: None,
                    })
                }
                _ => ChunkOutcome::Clean,
            })
            .collect();
        RunHealth {
            outcomes,
            fault_histogram: hist.into_sorted(),
            differential_checked: 0,
            differential_mismatches: 0,
        }
    }
}

/// Name-keyed fault counter (tiny domain: linear scan beats a map).
#[derive(Default)]
struct Histogram(Vec<(&'static str, u64)>);

impl Histogram {
    fn bump(&mut self, kind: &FaultKind) {
        let name = kind.name();
        match self.0.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => self.0.push((name, 1)),
        }
    }

    fn into_sorted(mut self) -> Vec<(&'static str, u64)> {
        self.0.sort_unstable_by_key(|(n, _)| *n);
        self.0
    }
}

/// Runs the recovery ladder over a finished run's reports, mutating
/// faulted chunks' reports in place (replaced by the successful
/// replay's report, overwritten with fallback output, or stripped of
/// partial output on quarantine) and keeping `finals` consistent: a
/// recovered chunk that is the last occupant of its device lane slot
/// contributes its replay's window snapshot, exactly as a clean run
/// would have.
pub(crate) fn supervise(
    p: &RunParams,
    inputs: &[&[u8]],
    reports: &mut [LaneReport],
    finals: &mut Vec<WindowSnapshot>,
    sup: &SupervisorOptions,
) -> RunHealth {
    let mut hist = Histogram::default();
    let mut outcomes = Vec::with_capacity(reports.len());
    let mut differential_checked = 0u64;
    let mut differential_mismatches = 0u64;
    // Replays disarm transient chaos hooks; persistent chaos stays
    // armed so deterministic faults re-fault deterministically.
    let retry_cfg = retry_config(p.cfg);
    let retry_params = RunParams {
        cfg: &retry_cfg,
        ..*p
    };
    for (idx, rep) in reports.iter_mut().enumerate() {
        let LaneStatus::Fault(first_fault) = rep.status.clone() else {
            // Clean chunk: optionally cross-check against the reference.
            if sup.differential {
                if let Some(fb) = &sup.fallback {
                    if let Ok(expect) = fb.reference_output(inputs[idx]) {
                        differential_checked += 1;
                        if expect != rep.output {
                            differential_mismatches += 1;
                        }
                    }
                }
            }
            outcomes.push(ChunkOutcome::Clean);
            continue;
        };
        hist.bump(&first_fault);

        // Rung 1: bounded deterministic replay from staging.
        //
        // Exception: a cycle-budget fault on an image with a complete
        // resource certificate. The certificate proves a clean run fits
        // the cert-derived budget, so blowing it is not a transient the
        // replay could absorb — the chunk is deterministically over
        // budget and every retry would burn the full budget again.
        // Go straight to the fallback rung (unless chaos hooks are
        // armed, where the budget fault may be the injected fault
        // itself and replays legitimately recover).
        let chaos_armed = p.cfg.chaos_panic_at.is_some() || p.cfg.chaos_fault_at.is_some();
        let certified_budget_fault = matches!(first_fault, FaultKind::CycleBudget { .. })
            && !chaos_armed
            && p.image.cert.as_ref().is_some_and(|c| c.is_complete());
        let retries = if certified_budget_fault {
            0
        } else {
            sup.max_retries
        };
        let mut last_fault = first_fault;
        let mut recovered = None;
        for attempt in 1..=retries {
            backoff(sup, attempt);
            let (replay, window) = replay_chunk(&retry_params, inputs[idx]);
            if let LaneStatus::Fault(kind) = &replay.status {
                hist.bump(kind);
                last_fault = kind.clone();
            } else {
                recovered = Some((attempt, replay, window));
                break;
            }
        }
        if let Some((attempts, new_rep, window)) = recovered {
            *rep = new_rep;
            if pool::is_final_occupant(idx, p.lanes_cap, inputs.len()) {
                upsert_final(finals, idx % p.lanes_cap, window);
            }
            outcomes.push(ChunkOutcome::Recovered { attempts });
            continue;
        }
        // Rung 2: software reference fallback.
        let fallback_error = match &sup.fallback {
            Some(fb) => match fb.reference_output(inputs[idx]) {
                Ok(bytes) => {
                    rep.output = bytes;
                    rep.bytes_consumed = inputs[idx].len() as u64;
                    outcomes.push(ChunkOutcome::Fallback);
                    continue;
                }
                Err(e) => Some(e),
            },
            None => None,
        };

        // Rung 3: quarantine. Drop partial output so nothing half-
        // written leaks into the concatenated run output.
        rep.output = Vec::new();
        outcomes.push(ChunkOutcome::Quarantined(QuarantineReason {
            fault: last_fault,
            fallback_error,
        }));
    }
    RunHealth {
        outcomes,
        fault_histogram: hist.into_sorted(),
        differential_checked,
        differential_mismatches,
    }
}

/// The lane config replays run under: chaos hooks flagged transient
/// are disarmed (the soft error does not recur); everything else is
/// verbatim, so deterministic faults replay deterministically.
fn retry_config(cfg: &LaneConfig) -> LaneConfig {
    let mut retry = cfg.clone();
    if retry.chaos_transient {
        retry.chaos_panic_at = None;
        retry.chaos_fault_at = None;
    }
    retry
}

/// One replay attempt on a fresh slot, panic-safe: an unwinding replay
/// degrades to a [`FaultKind::HostPanic`] report like any other chunk.
/// Returns the report plus the slot's final window (for `finals`
/// bookkeeping when the replay succeeds).
fn replay_chunk(p: &RunParams, input: &[u8]) -> (LaneReport, Vec<u32>) {
    let mut slot = pool::LaneSlot::new(p.window_words);
    match catch_unwind(AssertUnwindSafe(|| pool::run_chunk(p, &mut slot, input))) {
        Ok(rep) => {
            let window = slot.mem.words().to_vec();
            (rep, window)
        }
        Err(payload) => (
            pool::fault_lane_report(pool::panic_message(payload.as_ref())),
            Vec::new(),
        ),
    }
}

/// Replaces (or inserts) the final window snapshot for a device lane
/// slot — a recovered chunk's replay window supersedes whatever the
/// faulted attempt left (a panicked attempt left nothing at all).
fn upsert_final(finals: &mut Vec<WindowSnapshot>, slot: usize, window: Vec<u32>) {
    match finals.iter_mut().find(|(s, _)| *s == slot) {
        Some((_, w)) => *w = window,
        None => finals.push((slot, window)),
    }
}

/// Milliseconds of capped exponential backoff before replay `attempt`
/// (1-based): `min(cap, base << (attempt - 1))`. Pure so the schedule
/// is testable without sleeping; the shift amount saturates at 16 (and
/// the multiply saturates at `u64::MAX`), so absurd attempt counts
/// still land on the cap instead of overflowing.
fn backoff_ms(sup: &SupervisorOptions, attempt: u32) -> u64 {
    if sup.backoff_base_ms == 0 {
        return 0;
    }
    sup.backoff_base_ms
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
        .min(sup.backoff_cap_ms)
}

/// Capped exponential host backoff before replay `attempt` (1-based).
fn backoff(sup: &SupervisorOptions, attempt: u32) {
    let ms = backoff_ms(sup, attempt);
    if ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_cap_below_base() {
        let bad = SupervisorOptions {
            backoff_base_ms: 4,
            backoff_cap_ms: 3,
            ..SupervisorOptions::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(crate::error::SimError::SupervisorConfig {
                backoff_base_ms: 4,
                backoff_cap_ms: 3,
            })
        ));
        assert!(SupervisorOptions::default().validate().is_ok());
        // Retry-less supervision is legitimate (straight to fallback).
        let no_retry = SupervisorOptions {
            max_retries: 0,
            ..SupervisorOptions::default()
        };
        assert!(no_retry.validate().is_ok());
        // base == 0 disables sleeping; the cap is then irrelevant.
        let no_sleep = SupervisorOptions {
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            ..SupervisorOptions::default()
        };
        assert!(no_sleep.validate().is_ok());
    }

    #[test]
    fn backoff_schedule_doubles_then_caps() {
        let sup = SupervisorOptions {
            backoff_base_ms: 1,
            backoff_cap_ms: 16,
            ..SupervisorOptions::default()
        };
        let schedule: Vec<u64> = (1..=7).map(|a| backoff_ms(&sup, a)).collect();
        assert_eq!(schedule, vec![1, 2, 4, 8, 16, 16, 16]);
    }

    #[test]
    fn backoff_shift_saturates_at_large_attempt_counts() {
        let sup = SupervisorOptions {
            backoff_base_ms: 3,
            backoff_cap_ms: u64::MAX,
            ..SupervisorOptions::default()
        };
        // The shift amount is clamped to 16, so even u32::MAX attempts
        // compute 3 << 16 rather than overflowing the shift.
        assert_eq!(backoff_ms(&sup, u32::MAX), 3 << 16);
        assert_eq!(backoff_ms(&sup, 17), backoff_ms(&sup, u32::MAX));
        // attempt 0 (out of contract but reachable) must not underflow.
        assert_eq!(backoff_ms(&sup, 0), 3);
        // A huge base saturates the multiply instead of wrapping.
        let huge = SupervisorOptions {
            backoff_base_ms: u64::MAX / 2,
            backoff_cap_ms: u64::MAX,
            ..SupervisorOptions::default()
        };
        assert_eq!(backoff_ms(&huge, 33), u64::MAX);
        // Zero base disables the sleep regardless of attempt.
        let off = SupervisorOptions {
            backoff_base_ms: 0,
            ..SupervisorOptions::default()
        };
        assert_eq!(backoff_ms(&off, 5), 0);
    }
}

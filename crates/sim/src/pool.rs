//! Persistent lane-pool execution of data-parallel runs.
//!
//! PR 1's parallel path spawned and joined a fresh host thread per lane
//! per wave and reinitialized the whole window memory per chunk, which
//! dominates host time on many-small-chunk runs (the shape of every ETL
//! workload). This module replaces it with a persistent worker pool:
//!
//! * workers are created **once per run** and pull chunk indices from a
//!   shared atomic counter — dynamic scheduling with no host-side wave
//!   barrier, so a fast lane immediately takes the next chunk;
//! * each worker owns a [`LaneSlot`] — a private window-sized
//!   [`LocalMemory`] and a reusable [`OutputSink`] — reused across all
//!   the chunks it claims;
//! * window reset between chunks clears only the dirty prefix the
//!   previous chunk actually touched ([`LocalMemory::dirty_words`])
//!   instead of rewriting the full window, and skips reloading the
//!   program image when the previous lane finished with the
//!   pristine-code flag intact (the code prefix is then provably still
//!   the verbatim image);
//! * every chunk body runs under `catch_unwind`, so a panicking lane
//!   degrades to [`LaneStatus::Fault`] in its own report while sibling
//!   chunks survive — same contract as the per-wave threads had;
//! * reports land in an index-addressed results vector, so the merged
//!   output is deterministic regardless of which worker ran which chunk.
//!
//! Host scheduling is decoupled from modeled time: the engine recomputes
//! `wall_cycles` from the per-lane reports with the wave formula
//! (DESIGN.md §2.6.2), so the [`crate::engine::UdpRunReport`] stays
//! bit-identical to the sequential path no matter how chunks were
//! interleaved on the host.

use crate::engine::Staging;
use crate::error::FaultKind;
use crate::lane::{Lane, LaneConfig, LaneReport, LaneStatus};
use crate::memory::LocalMemory;
use crate::stream::{BitStream, OutputSink};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use udp_asm::{DecodedProgram, ProgramImage};

/// Everything shared by every chunk of one data-parallel run.
pub(crate) struct RunParams<'a> {
    /// The program image loaded at origin 0 of each private window.
    pub image: &'a ProgramImage,
    /// Predecoded view shared by all lanes.
    pub decoded: &'a Arc<DecodedProgram>,
    /// Per-lane staging (segments + register presets).
    pub staging: &'a Staging,
    /// Lane configuration (cycle cap, chaos hook).
    pub cfg: &'a LaneConfig,
    /// Window size in words (`banks_per_lane * BANK_WORDS`).
    pub window_words: usize,
    /// Concurrent-lane capacity of the device (`NUM_BANKS /
    /// banks_per_lane`); chunk `i` occupies device lane slot
    /// `i % lanes_cap`.
    pub lanes_cap: usize,
    /// Precomputed [`crate::engine::staging_clears_code`]: no staging
    /// segment overlaps the code span, so lanes may take the
    /// pristine-code fetch fast path.
    pub code_clean: bool,
    /// Tier-2 specialization of the program, shared by every chunk when
    /// the run selected [`crate::engine::ExecBackend::Compiled`] and
    /// the program was specializable; `None` runs the interpreter.
    pub compiled: Option<&'a crate::compiled::CompiledProgram>,
}

/// A final window snapshot: `(device lane slot, window words)` for the
/// last chunk that occupied that slot. The engine copies these into the
/// shared device memory so `read_lane_bytes` sees the same post-run
/// state as a fully sequential run.
pub(crate) type WindowSnapshot = (usize, Vec<u32>);

/// One worker's private execution state, reused chunk after chunk.
/// (Also built fresh by the supervisor for each replay attempt, which
/// is what makes replay-from-staging deterministic: a retry sees
/// exactly the state a first attempt would.)
pub(crate) struct LaneSlot {
    pub(crate) mem: LocalMemory,
    out: OutputSink,
    /// True when `mem[0, image words)` is known to hold the verbatim
    /// program image: a previous reset loaded it and the lane finished
    /// with the pristine-code flag still set ([`Lane::code_is_clean`]).
    /// Lets the next reset skip the image reload entirely.
    code_pristine: bool,
}

impl LaneSlot {
    pub(crate) fn new(window_words: usize) -> Self {
        let mut mem = LocalMemory::with_words(window_words);
        // Private windows only exist under local addressing, whose
        // conflict model never reads per-bank counts.
        mem.set_bank_tracking(false);
        LaneSlot {
            mem,
            out: OutputSink::new(),
            code_pristine: false,
        }
    }
}

/// Restores a slot's memory to "freshly zeroed + image + staging":
/// clears the dirty tail above the code span, reloads the code prefix
/// and staging segments over the rest, and zeroes the counters. Both
/// execution paths share this helper so their reset semantics cannot
/// diverge.
fn reset_window(p: &RunParams, mem: &mut LocalMemory, code_pristine: bool) {
    let code_words = p.image.words.len();
    let dirty = mem.dirty_words();
    if dirty > code_words {
        mem.clear_words(code_words as u32, dirty - code_words);
    }
    if code_pristine {
        // The code prefix is already the verbatim image (the previous
        // lane kept the pristine-code flag), so only the cleared tail
        // needs accounting — no reload.
        mem.assume_zero_above(code_words);
    } else {
        // Words at or above the old dirty mark were never written; the
        // range below `code_words` is fully overwritten by the reload.
        mem.assume_all_zero();
        mem.load_words(0, &p.image.words);
    }
    for (off, bytes) in &p.staging.segments {
        mem.load_bytes(*off, bytes);
    }
    mem.reset_counters();
}

/// Runs one chunk on a slot. The lane executes at origin 0 of the
/// private window, which under local addressing is indistinguishable
/// from running at its slot origin in the shared device memory: same
/// counted reference sequence, same cycles, same output.
pub(crate) fn run_chunk(p: &RunParams, slot: &mut LaneSlot, input: &[u8]) -> LaneReport {
    reset_window(p, &mut slot.mem, slot.code_pristine);
    slot.out.reserve(input.len());
    let mut lane = Lane::with_decoded(p.image, 0, Arc::clone(p.decoded));
    if p.code_clean {
        lane.mark_code_clean();
    }
    for (r, v) in &p.staging.regs {
        lane.preset_reg(*r, *v);
    }
    let mut stream = BitStream::new(input);
    let rep = match p.compiled {
        Some(cp) => crate::compiled::run_compiled(
            cp,
            &mut lane,
            &mut slot.mem,
            &mut stream,
            &mut slot.out,
            p.cfg,
        ),
        None => lane.run(&mut slot.mem, &mut stream, &mut slot.out, p.cfg),
    };
    // If the lane never wrote its code span, the image is still in
    // place verbatim and the next reset can skip reloading it. (A
    // panicking chunk never reaches this point; its slot is rebuilt.)
    slot.code_pristine = lane.code_is_clean();
    rep
    // `mem_refs` in the report is the slot memory's total counted
    // references, which — counters having been reset above — is exactly
    // the per-lane delta the shared-memory path computes.
}

/// True when chunk `idx` is the last occupant of its device lane slot,
/// i.e. its final window state is the one a sequential run would leave
/// in device memory.
pub(crate) fn is_final_occupant(idx: usize, lanes_cap: usize, total: usize) -> bool {
    idx + lanes_cap >= total
}

/// Sequential execution through the same slot/reset machinery as the
/// pool: one slot, reused chunk after chunk. Without `catch_panics`,
/// panics propagate (the bare sequential path has no degradation
/// contract to keep); with it — set when a supervisor is attached —
/// each chunk runs under `catch_unwind` and a panicking chunk degrades
/// to a [`FaultKind::HostPanic`] report exactly like the pooled path,
/// so the supervisor sees the same fault stream either way.
pub(crate) fn run_sequential(
    p: &RunParams,
    inputs: &[&[u8]],
    catch_panics: bool,
) -> (Vec<LaneReport>, Vec<WindowSnapshot>) {
    let mut slot = LaneSlot::new(p.window_words);
    let mut reports = Vec::with_capacity(inputs.len());
    let mut finals = Vec::new();
    for (idx, input) in inputs.iter().enumerate() {
        let rep = if catch_panics {
            match catch_unwind(AssertUnwindSafe(|| run_chunk(p, &mut slot, input))) {
                Ok(rep) => rep,
                Err(payload) => {
                    slot = LaneSlot::new(p.window_words);
                    fault_lane_report(panic_message(payload.as_ref()))
                }
            }
        } else {
            run_chunk(p, &mut slot, input)
        };
        let panicked = matches!(rep.status, LaneStatus::Fault(FaultKind::HostPanic(_)));
        reports.push(rep);
        if !panicked && is_final_occupant(idx, p.lanes_cap, inputs.len()) {
            finals.push((idx % p.lanes_cap, slot.mem.words().to_vec()));
        }
    }
    (reports, finals)
}

/// Pooled execution: `min(host threads, lanes_cap, chunks)` persistent
/// workers race down the chunk list via a shared atomic counter. Returns
/// index-addressed reports (every present entry at position `i` is chunk
/// `i`'s report) plus the final window snapshots.
///
/// A chunk whose body panics yields a [`LaneStatus::Fault`] report and a
/// rebuilt slot; in the (hypothetical) case of a worker dying outside
/// the `catch_unwind`, its claimed-but-unreported chunks come back as
/// `None` and the engine substitutes fault reports — degradation never
/// becomes a host abort.
pub(crate) fn run_pooled(
    p: &RunParams,
    inputs: &[&[u8]],
) -> (Vec<Option<LaneReport>>, Vec<WindowSnapshot>) {
    let total = inputs.len();
    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(p.lanes_cap)
        .min(total)
        .max(1);
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<LaneReport>> = (0..total).map(|_| None).collect();
    let mut finals: Vec<WindowSnapshot> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || worker_loop(p, inputs, next))
            })
            .collect();
        for h in handles {
            if let Ok((reports, windows)) = h.join() {
                for (idx, rep) in reports {
                    results[idx] = Some(rep);
                }
                finals.extend(windows);
            }
        }
    });
    (results, finals)
}

/// One worker: claim chunks until the counter runs past the end,
/// running each under `catch_unwind` so a poisoned chunk cannot take
/// down the pool.
fn worker_loop(
    p: &RunParams,
    inputs: &[&[u8]],
    next: &AtomicUsize,
) -> (Vec<(usize, LaneReport)>, Vec<WindowSnapshot>) {
    let total = inputs.len();
    let mut slot = LaneSlot::new(p.window_words);
    let mut reports = Vec::new();
    let mut finals = Vec::new();
    loop {
        let idx = next.fetch_add(1, Ordering::Relaxed);
        if idx >= total {
            break;
        }
        let rep = match catch_unwind(AssertUnwindSafe(|| run_chunk(p, &mut slot, inputs[idx]))) {
            Ok(rep) => {
                if is_final_occupant(idx, p.lanes_cap, total) {
                    finals.push((idx % p.lanes_cap, slot.mem.words().to_vec()));
                }
                rep
            }
            Err(payload) => {
                // The slot's memory and sink are in an unknown state
                // mid-panic; rebuild rather than reason about partial
                // writes. (Cold path: chaos injection and bugs only.)
                slot = LaneSlot::new(p.window_words);
                fault_lane_report(panic_message(payload.as_ref()))
            }
        };
        reports.push((idx, rep));
    }
    (reports, finals)
}

/// Extracts the human-readable message from a panic payload (the two
/// shapes `panic!` produces: a `&'static str` or a formatted `String`).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The report a chunk gets when its execution panicked mid-run: a
/// [`LaneStatus::Fault`] carrying [`FaultKind::HostPanic`] with the
/// panic message, zero counters. The lane's modeled state (cycles,
/// output) died with the panic, so nothing else can honestly be
/// reported.
pub(crate) fn fault_lane_report(msg: String) -> LaneReport {
    LaneReport {
        status: LaneStatus::Fault(FaultKind::HostPanic(msg)),
        cycles: 0,
        dispatches: 0,
        fallback_misses: 0,
        actions: 0,
        mem_refs: 0,
        bytes_consumed: 0,
        output: Vec::new(),
        reports: Vec::new(),
        accepted: false,
        regs: [0; 16],
    }
}

//! The multi-bank local memory.
//!
//! 1 MB in 64 × 16 KB banks, one read and one write port each (paper §6).
//! The simulator keeps the memory flat and counts per-bank references so
//! the engine can account bank-conflict stalls (restricted/global modes)
//! and the energy model can charge per-reference picojoules.

use udp_isa::mem::{bank_of_word, BANK_WORDS, NUM_BANKS, TOTAL_WORDS};

/// The UDP local memory.
#[derive(Debug, Clone)]
pub struct LocalMemory {
    words: Vec<u32>,
    reads: u64,
    writes: u64,
    bank_refs: [u64; NUM_BANKS],
    /// When false, per-bank counts are not maintained (total `reads`/
    /// `writes` still are). The engine turns this off for addressing
    /// modes whose conflict model never reads them (local windows are
    /// disjoint by construction), sparing the hot path the per-access
    /// array update.
    track_banks: bool,
    /// Dirty high-water mark: every word at an index ≥ this is
    /// guaranteed still zero (nothing has written it since construction
    /// or the last [`LocalMemory::assume_all_zero`]). Window resets
    /// between chunks clear only this prefix instead of the full
    /// window.
    dirty_words: usize,
    /// Reusable gather buffer for [`LocalMemory::copy_bytes_counted`],
    /// so in-window copies do not allocate per action.
    copy_scratch: Vec<u8>,
}

impl LocalMemory {
    /// A zeroed full-size (1 MB) memory.
    pub fn new() -> Self {
        Self::with_words(TOTAL_WORDS)
    }

    /// A zeroed memory of `words` 32-bit words (tests and small runs).
    pub fn with_words(words: usize) -> Self {
        LocalMemory {
            words: vec![0; words],
            reads: 0,
            writes: 0,
            bank_refs: [0; NUM_BANKS],
            track_banks: true,
            dirty_words: 0,
            copy_scratch: Vec::new(),
        }
    }

    /// Capacity in words.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Reads a word at a flat word address (counted).
    #[inline]
    pub fn read_word(&mut self, addr: u32) -> u32 {
        self.count_read(addr);
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Writes a word at a flat word address (counted; out-of-range writes
    /// are dropped, matching a lane whose window exceeded its allocation).
    #[inline]
    pub fn write_word(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        if self.track_banks {
            self.bank_refs[bank_of_word(addr).0 % NUM_BANKS] += 1;
        }
        if let Some(w) = self.words.get_mut(addr as usize) {
            *w = value;
            if addr as usize >= self.dirty_words {
                self.dirty_words = addr as usize + 1;
            }
        }
    }

    /// Reads a byte at a flat byte address (counted as one reference).
    #[inline]
    pub fn read_byte(&mut self, byte_addr: u32) -> u8 {
        let w = self.read_word(byte_addr / 4);
        (w >> ((byte_addr % 4) * 8)) as u8
    }

    /// Writes a byte at a flat byte address (counted as one reference).
    #[inline]
    pub fn write_byte(&mut self, byte_addr: u32, value: u8) {
        let word_addr = byte_addr / 4;
        let shift = (byte_addr % 4) * 8;
        let old = self.words.get(word_addr as usize).copied().unwrap_or(0);
        let new = (old & !(0xFFu32 << shift)) | (u32::from(value) << shift);
        self.write_word(word_addr, new);
    }

    /// The accounting half of [`LocalMemory::read_word`] — counts a word
    /// read at `addr` without touching the data, for callers that
    /// already hold the value (e.g. a validated predecoded-code fetch).
    #[inline]
    pub fn count_read(&mut self, addr: u32) {
        self.reads += 1;
        if self.track_banks {
            self.bank_refs[bank_of_word(addr).0 % NUM_BANKS] += 1;
        }
    }

    /// Enables or disables per-bank reference tracking (totals are
    /// always kept). Leave enabled whenever the conflict model might
    /// consult [`LocalMemory::bank_refs`].
    pub fn set_bank_tracking(&mut self, on: bool) {
        self.track_banks = on;
    }

    /// Whether per-bank tracking is on (see
    /// [`LocalMemory::set_bank_tracking`]).
    #[inline]
    pub fn tracks_banks(&self) -> bool {
        self.track_banks
    }

    /// Credits `n` already-performed word reads in one step — the bulk
    /// form of [`LocalMemory::count_read`] for callers that batched
    /// their accounting locally. Only valid while bank tracking is off
    /// (there are no per-access addresses to attribute).
    #[inline]
    pub fn add_reads(&mut self, n: u64) {
        debug_assert!(
            !self.track_banks,
            "bulk read credit needs per-bank addresses"
        );
        self.reads += n;
    }

    /// Uncounted inspection (host/driver access).
    pub fn peek_word(&self, addr: u32) -> u32 {
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Uncounted byte inspection.
    pub fn peek_byte(&self, byte_addr: u32) -> u8 {
        (self.peek_word(byte_addr / 4) >> ((byte_addr % 4) * 8)) as u8
    }

    /// Host/driver bulk load of words at `origin` (uncounted, like DLT
    /// staging). Data past the end of memory is clipped.
    pub fn load_words(&mut self, origin: u32, data: &[u32]) {
        let start = (origin as usize).min(self.words.len());
        let n = data.len().min(self.words.len() - start);
        self.words[start..start + n].copy_from_slice(&data[..n]);
        if start + n > self.dirty_words {
            self.dirty_words = start + n;
        }
    }

    /// Host/driver bulk load of bytes at a byte address (uncounted).
    pub fn load_bytes(&mut self, byte_origin: u32, data: &[u8]) {
        self.place_bytes(byte_origin, data);
    }

    /// Word-merged byte placement shared by [`LocalMemory::load_bytes`]
    /// and the counted bulk stores: whole covered words are written in
    /// one step instead of a read-modify-write per byte. Out-of-range
    /// bytes are dropped, as with the per-byte path.
    fn place_bytes(&mut self, byte_origin: u32, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        if byte_origin as u64 + data.len() as u64 > u64::from(u32::MAX) + 1 {
            // Address space wrap: byte-at-a-time with wrapping addresses.
            for (i, &b) in data.iter().enumerate() {
                let addr = byte_origin.wrapping_add(i as u32);
                let word_addr = (addr / 4) as usize;
                let shift = (addr % 4) * 8;
                if let Some(w) = self.words.get_mut(word_addr) {
                    *w = (*w & !(0xFFu32 << shift)) | (u32::from(b) << shift);
                    if word_addr >= self.dirty_words {
                        self.dirty_words = word_addr + 1;
                    }
                }
            }
            return;
        }
        let start = byte_origin as usize;
        let data_end = self.words.len() * 4;
        if start >= data_end {
            return;
        }
        let end = (start + data.len()).min(data_end);
        let n = end - start;
        let mut addr = start;
        let mut i = 0usize;
        let put_byte = |words: &mut [u32], addr: usize, b: u8| {
            let shift = (addr % 4) * 8;
            let w = &mut words[addr / 4];
            *w = (*w & !(0xFFu32 << shift)) | (u32::from(b) << shift);
        };
        while !addr.is_multiple_of(4) && i < n {
            put_byte(&mut self.words, addr, data[i]);
            addr += 1;
            i += 1;
        }
        while i + 4 <= n {
            self.words[addr / 4] =
                u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
            addr += 4;
            i += 4;
        }
        while i < n {
            put_byte(&mut self.words, addr, data[i]);
            addr += 1;
            i += 1;
        }
        let end_word = end.div_ceil(4).min(self.words.len());
        if end_word > self.dirty_words {
            self.dirty_words = end_word;
        }
    }

    /// Bulk uncounted byte read: appends `len` bytes starting at byte
    /// address `byte_origin` to `dst` — zeros past the end of memory —
    /// byte-for-byte what `len` [`LocalMemory::peek_byte`] calls would
    /// produce, but moving whole words.
    pub fn extend_bytes_into(&self, byte_origin: u32, len: usize, dst: &mut Vec<u8>) {
        dst.reserve(len);
        if byte_origin as u64 + len as u64 > u64::from(u32::MAX) + 1 {
            // Address space wrap: byte-at-a-time with wrapping addresses.
            for i in 0..len {
                dst.push(self.peek_byte(byte_origin.wrapping_add(i as u32)));
            }
            return;
        }
        let start = byte_origin as usize;
        let end = start + len;
        let data_end = self.words.len() * 4;
        let mut produced = 0usize;
        if start < data_end {
            let in_end = end.min(data_end);
            let mut addr = start;
            while !addr.is_multiple_of(4) && addr < in_end {
                dst.push(self.peek_byte(addr as u32));
                addr += 1;
            }
            while addr + 4 <= in_end {
                dst.extend_from_slice(&self.words[addr / 4].to_le_bytes());
                addr += 4;
            }
            while addr < in_end {
                dst.push(self.peek_byte(addr as u32));
                addr += 1;
            }
            produced = in_end - start;
        }
        dst.resize(dst.len() + (len - produced), 0);
    }

    /// Counted byte-range copy within the memory — the `LoopCpy`
    /// datapath. Reads are uncounted peeks and writes are counted,
    /// exactly like `n` [`LocalMemory::peek_byte`] +
    /// [`LocalMemory::write_byte`] pairs, including the forward-copy
    /// replication when the destination starts inside the source range
    /// (the in-memory LZ primitive).
    pub fn copy_bytes_counted(&mut self, src: u32, dst: u32, n: u32) {
        if n == 0 {
            return;
        }
        let wraps = src as u64 + u64::from(n) > u64::from(u32::MAX) + 1
            || dst as u64 + u64::from(n) > u64::from(u32::MAX) + 1;
        if self.track_banks || wraps {
            // Per-byte path: bank attribution needs every address, and
            // wrapped ranges need the modular arithmetic.
            for i in 0..n {
                let b = self.peek_byte(src.wrapping_add(i));
                self.write_byte(dst.wrapping_add(i), b);
            }
            return;
        }
        self.writes += u64::from(n);
        let nn = n as usize;
        let mut buf = std::mem::take(&mut self.copy_scratch);
        buf.clear();
        let replicates = dst > src && u64::from(dst) < src as u64 + u64::from(n);
        if replicates {
            // Forward overlapping copy: the classic byte-at-a-time loop
            // re-reads its own output, replicating the `d`-byte seed.
            let d = (dst - src) as usize;
            self.extend_bytes_into(src, d, &mut buf);
            while buf.len() < nn {
                let take = (nn - buf.len()).min(buf.len());
                buf.extend_from_within(0..take);
            }
        } else {
            self.extend_bytes_into(src, nn, &mut buf);
        }
        self.place_bytes(dst, &buf);
        self.copy_scratch = buf;
    }

    /// Host/driver bulk zeroing of a word range (uncounted). Ranges
    /// past the end are clipped, like the bulk loads.
    pub fn clear_words(&mut self, origin: u32, len: usize) {
        let start = (origin as usize).min(self.words.len());
        let end = start.saturating_add(len).min(self.words.len());
        self.words[start..end].fill(0);
    }

    /// The full backing store (host/driver bulk copy-out, uncounted).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Host/driver bulk read of bytes (uncounted).
    pub fn dump_bytes(&self, byte_origin: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.peek_byte(byte_origin + i as u32))
            .collect()
    }

    /// Total counted references (reads + writes).
    pub fn refs(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counted reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Counted writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Per-bank reference counts (conflict accounting).
    pub fn bank_refs(&self) -> &[u64; NUM_BANKS] {
        &self.bank_refs
    }

    /// Resets the reference counters (not the contents, not the dirty
    /// mark).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.bank_refs = [0; NUM_BANKS];
    }

    /// The dirty high-water mark: every word at an index ≥ the returned
    /// value is guaranteed still zero. A window reset needs to clear
    /// (or overwrite) only `[0, dirty_words())` — on short-input chunks
    /// that is a small fraction of the window.
    pub fn dirty_words(&self) -> usize {
        self.dirty_words
    }

    /// Declares the memory all-zero again, resetting the dirty mark.
    /// Caller contract: every word in `[0, dirty_words())` has just
    /// been restored to zero (or is immediately reloaded before any
    /// lane reads it) — the engine's window reset clears the data tail
    /// and reloads the code prefix right after this call.
    pub fn assume_all_zero(&mut self) {
        self.dirty_words = 0;
    }

    /// Declares everything above word `words` zero, lowering (or
    /// raising) the dirty mark to exactly `words`. Caller contract:
    /// every word in `[words, dirty_words())` has just been zeroed and
    /// `[0, words)` holds live data the caller accounts for — the pool
    /// uses this when a window reset keeps the code prefix in place.
    pub(crate) fn assume_zero_above(&mut self, words: usize) {
        self.dirty_words = words;
    }

    /// Which banks a window of `span` words starting at `origin` touches.
    pub fn banks_of_window(origin: u32, span: usize) -> std::ops::Range<usize> {
        let first = origin as usize / BANK_WORDS;
        let last = (origin as usize + span.max(1) - 1) / BANK_WORDS;
        first..last + 1
    }
}

impl Default for LocalMemory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        let mut m = LocalMemory::with_words(16);
        m.write_word(3, 0xDEADBEEF);
        assert_eq!(m.read_word(3), 0xDEADBEEF);
        assert_eq!(m.refs(), 2);
    }

    #[test]
    fn byte_access_is_little_endian_within_words() {
        let mut m = LocalMemory::with_words(4);
        m.write_word(0, 0x04030201);
        assert_eq!(m.read_byte(0), 1);
        assert_eq!(m.read_byte(3), 4);
        m.write_byte(1, 0xAA);
        assert_eq!(m.peek_word(0), 0x0403AA01);
    }

    #[test]
    fn bulk_bytes_round_trip() {
        let mut m = LocalMemory::with_words(8);
        m.load_bytes(5, b"hello");
        assert_eq!(m.dump_bytes(5, 5), b"hello");
        assert_eq!(m.refs(), 0, "host access is uncounted");
    }

    #[test]
    fn out_of_range_reads_zero() {
        let mut m = LocalMemory::with_words(2);
        assert_eq!(m.read_word(100), 0);
    }

    #[test]
    fn window_bank_mapping() {
        let r = LocalMemory::banks_of_window(0, 4096);
        assert_eq!(r, 0..1);
        let r = LocalMemory::banks_of_window(4000, 200);
        assert_eq!(r, 0..2);
    }

    #[test]
    fn dirty_mark_tracks_every_mutation_path() {
        let mut m = LocalMemory::with_words(64);
        assert_eq!(m.dirty_words(), 0, "fresh memory is clean");
        m.write_word(5, 1);
        assert_eq!(m.dirty_words(), 6);
        m.write_byte(40, 0xAA); // word 10
        assert_eq!(m.dirty_words(), 11);
        m.load_words(20, &[1, 2]);
        assert_eq!(m.dirty_words(), 22);
        m.load_bytes(97, b"xyz"); // bytes 97..100 end in word 25
        assert_eq!(m.dirty_words(), 25);
        // Out-of-range writes are dropped and must not raise the mark.
        m.write_word(1000, 7);
        assert_eq!(m.dirty_words(), 25);
    }

    #[test]
    fn dirty_mark_reset_equals_full_clear() {
        // Dirty a scattering of words, then reset by clearing only the
        // dirty prefix: the result must be indistinguishable from a
        // full clear.
        let mut m = LocalMemory::with_words(256);
        m.write_word(3, 0xAB);
        m.load_bytes(100, b"hello world");
        m.write_byte(401, 9);
        let dirty = m.dirty_words();
        assert!(dirty < 256, "only a prefix is dirty");
        m.clear_words(0, dirty);
        m.assume_all_zero();
        let full = LocalMemory::with_words(256);
        assert_eq!(m.words(), full.words(), "prefix clear missed a word");
        assert_eq!(m.dirty_words(), 0);
    }

    #[test]
    fn bulk_byte_reads_match_peek_loop() {
        let mut m = LocalMemory::with_words(8);
        m.load_bytes(0, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        for start in 0..20u32 {
            for len in 0..24usize {
                let mut bulk = Vec::new();
                m.extend_bytes_into(start, len, &mut bulk);
                let slow: Vec<u8> = (0..len).map(|i| m.peek_byte(start + i as u32)).collect();
                assert_eq!(bulk, slow, "start={start} len={len}");
            }
        }
    }

    /// The per-byte peek+write reference for `copy_bytes_counted`.
    fn copy_reference(m: &mut LocalMemory, src: u32, dst: u32, n: u32) {
        for i in 0..n {
            let b = m.peek_byte(src.wrapping_add(i));
            m.write_byte(dst.wrapping_add(i), b);
        }
    }

    #[test]
    fn bulk_copy_matches_reference_including_overlap() {
        let seed: Vec<u8> = (0u8..32).collect();
        // Forward-overlap distances 1 and n-1 are the LZ edge cases;
        // also cover disjoint, self, backward-overlap, and past-the-end.
        for &(src, dst, n) in &[
            (0u32, 40u32, 16u32), // disjoint
            (0, 1, 16),           // overlap distance 1: replicate seed byte
            (0, 15, 16),          // overlap distance n-1
            (8, 4, 12),           // backward overlap (no replication)
            (4, 4, 8),            // self copy
            (20, 60, 16),         // destination clipped by memory end
            (60, 4, 12),          // source reads zeros past the end
        ] {
            let mut fast = LocalMemory::with_words(17); // 68 bytes
            fast.load_bytes(0, &seed);
            fast.set_bank_tracking(false);
            let mut slow = fast.clone();
            fast.copy_bytes_counted(src, dst, n);
            copy_reference(&mut slow, src, dst, n);
            assert_eq!(
                fast.words(),
                slow.words(),
                "bytes diverged for src={src} dst={dst} n={n}"
            );
            assert_eq!(fast.writes(), slow.writes(), "write count diverged");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_bulk_copy_matches_reference(
            seed in proptest::collection::vec(proptest::prelude::any::<u8>(), 1..64),
            src in 0u32..80,
            dst in 0u32..80,
            n in 0u32..96,
        ) {
            let mut fast = LocalMemory::with_words(20);
            fast.load_bytes(0, &seed);
            fast.set_bank_tracking(false);
            let mut slow = fast.clone();
            fast.copy_bytes_counted(src, dst, n);
            copy_reference(&mut slow, src, dst, n);
            proptest::prop_assert_eq!(fast.words(), slow.words());
            proptest::prop_assert_eq!(fast.writes(), slow.writes());
        }
    }
}

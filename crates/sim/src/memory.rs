//! The multi-bank local memory.
//!
//! 1 MB in 64 × 16 KB banks, one read and one write port each (paper §6).
//! The simulator keeps the memory flat and counts per-bank references so
//! the engine can account bank-conflict stalls (restricted/global modes)
//! and the energy model can charge per-reference picojoules.

use udp_isa::mem::{bank_of_word, BANK_WORDS, NUM_BANKS, TOTAL_WORDS};

/// The UDP local memory.
#[derive(Debug, Clone)]
pub struct LocalMemory {
    words: Vec<u32>,
    reads: u64,
    writes: u64,
    bank_refs: [u64; NUM_BANKS],
    /// When false, per-bank counts are not maintained (total `reads`/
    /// `writes` still are). The engine turns this off for addressing
    /// modes whose conflict model never reads them (local windows are
    /// disjoint by construction), sparing the hot path the per-access
    /// array update.
    track_banks: bool,
}

impl LocalMemory {
    /// A zeroed full-size (1 MB) memory.
    pub fn new() -> Self {
        Self::with_words(TOTAL_WORDS)
    }

    /// A zeroed memory of `words` 32-bit words (tests and small runs).
    pub fn with_words(words: usize) -> Self {
        LocalMemory {
            words: vec![0; words],
            reads: 0,
            writes: 0,
            bank_refs: [0; NUM_BANKS],
            track_banks: true,
        }
    }

    /// Capacity in words.
    pub fn len_words(&self) -> usize {
        self.words.len()
    }

    /// Reads a word at a flat word address (counted).
    #[inline]
    pub fn read_word(&mut self, addr: u32) -> u32 {
        self.count_read(addr);
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Writes a word at a flat word address (counted; out-of-range writes
    /// are dropped, matching a lane whose window exceeded its allocation).
    #[inline]
    pub fn write_word(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        if self.track_banks {
            self.bank_refs[bank_of_word(addr).0 % NUM_BANKS] += 1;
        }
        if let Some(w) = self.words.get_mut(addr as usize) {
            *w = value;
        }
    }

    /// Reads a byte at a flat byte address (counted as one reference).
    #[inline]
    pub fn read_byte(&mut self, byte_addr: u32) -> u8 {
        let w = self.read_word(byte_addr / 4);
        (w >> ((byte_addr % 4) * 8)) as u8
    }

    /// Writes a byte at a flat byte address (counted as one reference).
    #[inline]
    pub fn write_byte(&mut self, byte_addr: u32, value: u8) {
        let word_addr = byte_addr / 4;
        let shift = (byte_addr % 4) * 8;
        let old = self.words.get(word_addr as usize).copied().unwrap_or(0);
        let new = (old & !(0xFFu32 << shift)) | (u32::from(value) << shift);
        self.write_word(word_addr, new);
    }

    /// The accounting half of [`LocalMemory::read_word`] — counts a word
    /// read at `addr` without touching the data, for callers that
    /// already hold the value (e.g. a validated predecoded-code fetch).
    #[inline]
    pub fn count_read(&mut self, addr: u32) {
        self.reads += 1;
        if self.track_banks {
            self.bank_refs[bank_of_word(addr).0 % NUM_BANKS] += 1;
        }
    }

    /// Enables or disables per-bank reference tracking (totals are
    /// always kept). Leave enabled whenever the conflict model might
    /// consult [`LocalMemory::bank_refs`].
    pub fn set_bank_tracking(&mut self, on: bool) {
        self.track_banks = on;
    }

    /// Whether per-bank tracking is on (see
    /// [`LocalMemory::set_bank_tracking`]).
    #[inline]
    pub fn tracks_banks(&self) -> bool {
        self.track_banks
    }

    /// Credits `n` already-performed word reads in one step — the bulk
    /// form of [`LocalMemory::count_read`] for callers that batched
    /// their accounting locally. Only valid while bank tracking is off
    /// (there are no per-access addresses to attribute).
    #[inline]
    pub fn add_reads(&mut self, n: u64) {
        debug_assert!(
            !self.track_banks,
            "bulk read credit needs per-bank addresses"
        );
        self.reads += n;
    }

    /// Uncounted inspection (host/driver access).
    pub fn peek_word(&self, addr: u32) -> u32 {
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Uncounted byte inspection.
    pub fn peek_byte(&self, byte_addr: u32) -> u8 {
        (self.peek_word(byte_addr / 4) >> ((byte_addr % 4) * 8)) as u8
    }

    /// Host/driver bulk load of words at `origin` (uncounted, like DLT
    /// staging). Data past the end of memory is clipped.
    pub fn load_words(&mut self, origin: u32, data: &[u32]) {
        let start = (origin as usize).min(self.words.len());
        let n = data.len().min(self.words.len() - start);
        self.words[start..start + n].copy_from_slice(&data[..n]);
    }

    /// Host/driver bulk load of bytes at a byte address (uncounted).
    pub fn load_bytes(&mut self, byte_origin: u32, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            let addr = byte_origin + i as u32;
            let word_addr = (addr / 4) as usize;
            let shift = (addr % 4) * 8;
            if let Some(w) = self.words.get_mut(word_addr) {
                *w = (*w & !(0xFFu32 << shift)) | (u32::from(b) << shift);
            }
        }
    }

    /// Host/driver bulk zeroing of a word range (uncounted). Ranges
    /// past the end are clipped, like the bulk loads.
    pub fn clear_words(&mut self, origin: u32, len: usize) {
        let start = (origin as usize).min(self.words.len());
        let end = start.saturating_add(len).min(self.words.len());
        self.words[start..end].fill(0);
    }

    /// The full backing store (host/driver bulk copy-out, uncounted).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Host/driver bulk read of bytes (uncounted).
    pub fn dump_bytes(&self, byte_origin: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.peek_byte(byte_origin + i as u32))
            .collect()
    }

    /// Total counted references (reads + writes).
    pub fn refs(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counted reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Counted writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Per-bank reference counts (conflict accounting).
    pub fn bank_refs(&self) -> &[u64; NUM_BANKS] {
        &self.bank_refs
    }

    /// Resets the reference counters (not the contents).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.bank_refs = [0; NUM_BANKS];
    }

    /// Which banks a window of `span` words starting at `origin` touches.
    pub fn banks_of_window(origin: u32, span: usize) -> std::ops::Range<usize> {
        let first = origin as usize / BANK_WORDS;
        let last = (origin as usize + span.max(1) - 1) / BANK_WORDS;
        first..last + 1
    }
}

impl Default for LocalMemory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        let mut m = LocalMemory::with_words(16);
        m.write_word(3, 0xDEADBEEF);
        assert_eq!(m.read_word(3), 0xDEADBEEF);
        assert_eq!(m.refs(), 2);
    }

    #[test]
    fn byte_access_is_little_endian_within_words() {
        let mut m = LocalMemory::with_words(4);
        m.write_word(0, 0x04030201);
        assert_eq!(m.read_byte(0), 1);
        assert_eq!(m.read_byte(3), 4);
        m.write_byte(1, 0xAA);
        assert_eq!(m.peek_word(0), 0x0403AA01);
    }

    #[test]
    fn bulk_bytes_round_trip() {
        let mut m = LocalMemory::with_words(8);
        m.load_bytes(5, b"hello");
        assert_eq!(m.dump_bytes(5, 5), b"hello");
        assert_eq!(m.refs(), 0, "host access is uncounted");
    }

    #[test]
    fn out_of_range_reads_zero() {
        let mut m = LocalMemory::with_words(2);
        assert_eq!(m.read_word(100), 0);
    }

    #[test]
    fn window_bank_mapping() {
        let r = LocalMemory::banks_of_window(0, 4096);
        assert_eq!(r, 0..1);
        let r = LocalMemory::banks_of_window(4000, 200);
        assert_eq!(r, 0..2);
    }
}

//! Tier-2 compiled execution backend (DESIGN.md §2.6.3).
//!
//! The interpreter in `lane.rs` re-checks per symbol what is actually a
//! per-*program* property: which dispatch slots of a state hit, whether
//! the taken transition carries actions, and where it lands. This
//! module lowers a verified, predecoded program into specialized
//! per-state dispatch tables at program-load time:
//!
//! * every reachable `(state base, exec kind)` pair discovered by a
//!   breadth-first walk of the transition graph becomes one compiled
//!   state with a dense 256-entry table of packed [`u32`] entries
//!   (symbols are at most 8 bits, so the table covers every possible
//!   dispatch value);
//! * "trivial" transitions — a signature hit with no attached actions
//!   landing in another compiled state — are encoded as a single table
//!   word carrying the successor index, so the inner loop is a
//!   load/compare/increment per input byte (`TAG_HIT`), with the same
//!   direct-threaded shape for trivial fallback misses (`TAG_MISS`);
//! * everything else (attached action blocks, pass states, slots whose
//!   words live outside the verbatim image span) routes to side tables
//!   that re-enter the interpreter's own `take()` machinery, or forces
//!   a deoptimization back to the interpreter mid-run.
//!
//! ## The semantics/timing split and the report invariant
//!
//! The compiled runner produces output bytes plus the same compact
//! counters the interpreter keeps (cycles, dispatches, fallback misses,
//! batched read credits); the full [`crate::lane::LaneReport`] is then
//! reconstructed by handing the lane object back to
//! [`crate::lane::Lane::run`], which either assembles the report from a
//! terminal status immediately or — after a deoptimization — resumes
//! interpreting from the exact architectural state the compiled loop
//! left. Either way the resulting [`crate::engine::UdpRunReport`] is
//! bit-identical to an all-interpreter run; the interpreter remains the
//! permanent differential oracle (the backend-matrix CI step and the
//! `backend_oracle` suite hold the two paths equal over the whole
//! compiler corpus, fault injection included).
//!
//! ## Soundness of compile-time specialization
//!
//! Tables are derived from `image.words`, which while the lane's
//! pristine-code flag holds is verbatim what fetches would read (the
//! same invariant the interpreter's predecoded fast path relies on).
//! Every escape hatch from that world deoptimizes: a write into the
//! code span clears the flag (checked after every action block), a
//! `SetBase` retargeting the window base invalidates precomputed
//! successor bases (checked the same way), and dispatch slots past the
//! image span — whose runtime contents are data, not code — compile to
//! [`EXIT_DEOPT`] entries. Deoptimization is always correct and merely
//! slow: the interpreter continues from the live lane state.

mod exec;

pub(crate) use exec::run_compiled;

use crate::lane::{EmitSpan, BLOCK_CAP, EMIT_SPAN_LEN};
use std::collections::HashMap;
use udp_asm::layout::CHAIN_CONTINUE_SIGNATURE;
use udp_asm::{DecodedProgram, ProgramImage};
use udp_isa::action::{Action, Opcode};
use udp_isa::transition::{ExecKind, TransitionWord, FALLBACK_SIGNATURE};

/// Packed dense-table entry layout: the top two bits select the entry
/// class, the low 30 bits carry the payload (a compiled-state index or
/// a side-table index).
pub(crate) const TAG_SHIFT: u32 = 30;
pub(crate) const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;
/// Signature hit, no actions, consuming successor: payload is the next
/// compiled-state index. Encoded as tag 0 so the burst loop's hit test
/// is a single compare against [`TAG_MISS`].
pub(crate) const TAG_HIT: u32 = 0 << TAG_SHIFT;
/// Signature miss whose fallback is trivial: payload is the next
/// compiled-state index; costs the miss surcharge (one extra cycle,
/// one extra read, one fallback-miss count).
pub(crate) const TAG_MISS: u32 = 1 << TAG_SHIFT;
/// Anything that runs the interpreter's `take()`: payload indexes
/// [`CompiledProgram::general`].
pub(crate) const TAG_GENERAL: u32 = 2 << TAG_SHIFT;
/// Terminal or unspecializable entries; payload selects which.
pub(crate) const TAG_EXIT: u32 = 3 << TAG_SHIFT;
/// The dispatch cannot be resolved from the verbatim image (slot or
/// fallback slot outside the span): undo the symbol read and hand the
/// lane back to the interpreter.
pub(crate) const EXIT_DEOPT: u32 = TAG_EXIT;
/// Signature miss with an absent (zero) fallback word: the lane stops
/// with `LaneStatus::NoTransition` after the miss surcharge.
pub(crate) const EXIT_NO_TRANSITION: u32 = TAG_EXIT | 1;

/// Upper bound on compiled states; programs whose reachable state set
/// exceeds it (degenerate hand-built images, not real kernels) fall
/// back to the interpreter outright.
const MAX_STATES: usize = 4096;

/// Why [`CompiledProgram::compile`] refused to specialize a program.
/// The stable reason strings surface in `hostperf --json` as the
/// `compiled_declined` column, so the bench trajectory records *why* a
/// kernel ran at interpreter parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Decline {
    /// The image is not marked executable (failed verification).
    NotExecutable,
    /// Symbol width beyond the 8-bit dense-table coverage.
    WideSymbols,
    /// The reachable state set exceeded [`MAX_STATES`].
    StateExplosion,
    /// The general side table overflowed the packed payload bits.
    TableOverflow,
    /// No state has a trivial arc the byte-burst loop could chew or a
    /// fusable action-per-symbol arc for the bit-burst loop: nothing
    /// to specialize, the interpreter is already optimal.
    NoFusableArcs,
}

impl Decline {
    /// Stable snake-case reason string.
    pub(crate) fn reason(self) -> &'static str {
        match self {
            Decline::NotExecutable => "not-executable",
            Decline::WideSymbols => "symbol-width-exceeds-dense-tables",
            Decline::StateExplosion => "state-count-exceeds-cap",
            Decline::TableOverflow => "dispatch-table-overflow",
            Decline::NoFusableArcs => "no-fusable-arcs",
        }
    }
}

/// Why the tier-2 compiled backend declines to specialize `image`, as
/// a stable reason string — `None` when it compiles. Diagnostic-only
/// (re-runs the compile pipeline; the engine keeps its own compiled
/// program).
pub(crate) fn decline_reason(image: &ProgramImage) -> Option<&'static str> {
    let decoded = image.predecode();
    CompiledProgram::compile(image, &decoded)
        .err()
        .map(Decline::reason)
}

/// Sentinel bit-table entry: this dispatch value is not fused —
/// leave the bit-burst loop and resolve it through the dense table.
pub(crate) const BITEMIT_NONE: u16 = u16::MAX;

/// One fused action-per-symbol dispatch — a bit-table entry the
/// "bit-burst" inner loop (DESIGN.md §2.6.4) runs without leaving its
/// locals. Two recognized shapes, plus the trivial hit/miss arcs so a
/// mixed state keeps bursting:
///
/// * **encoder** (`recognize_bitemit`): a consume arc whose block is
///   ≤ 2 constant `MovI rd; EmitBits rd` pairs, optionally ending in
///   one `EmitB` — folded at compile time to ≤ 32 constant output bits
///   plus an optional dynamic byte;
/// * **decoder**: an action-less consume arc into a pass state whose
///   plan putback-refills and takes a single-`EmitB` block back to a
///   consuming state (the Huffman `SsRef` leaf→emit→root walk).
///
/// Per-symbol charges replicate the interpreter exactly, including the
/// folded-cap re-check *between* the consume dispatch and the pass
/// step of the decoder shape (`pass_mid`).
#[derive(Debug, Clone)]
pub(crate) struct BitEmit {
    /// Constant output bits (MSB-first), folded from the block's
    /// `MovI`/`EmitBits` pairs; `len == 0` when none.
    pub(crate) code: u32,
    pub(crate) len: u8,
    /// This entry sits behind a signature miss: one surcharge cycle
    /// and read, one fallback-miss count.
    pub(crate) miss: bool,
    /// Trailing dynamic `EmitB src, imm`: align the output to a byte
    /// (zero-padded), then append `regs[src] + imm`. The recognizer
    /// excludes `R13`/`R15` sources so the burst's deferred symbol
    /// latch and stream cursor stay invisible.
    pub(crate) dyn_byte: Option<(u8, u16)>,
    /// Decoder shape: flat base of the intermediate pass state. The
    /// interpreter re-checks the folded cap between the consume
    /// dispatch and the pass step, so the burst must too — and on a
    /// trip, park the lane *at* the pass state.
    pub(crate) pass_mid: Option<u32>,
    /// Bits put back by the pass plan's refill signature (decoder
    /// shape; 0 otherwise).
    pub(crate) refill: u8,
    /// Final register writes of the fused block (≤ 2), applied per
    /// symbol. `R13`/`R15` excluded by the recognizer.
    pub(crate) writes: [(u8, u32); 2],
    pub(crate) nwrites: u8,
    /// Actions in the fused block: each costs 1 cycle, 1 counted code
    /// read, 1 `actions_run`.
    pub(crate) nacts: u8,
    /// Compiled successor — statically a consuming state.
    pub(crate) next: u32,
}

/// What `recognize_bitemit` extracts from a fusable block.
struct BitEmitShape {
    code: u32,
    len: u8,
    writes: [(u8, u32); 2],
    nwrites: u8,
    dyn_byte: Option<(u8, u16)>,
}

/// Recognizes the action-per-symbol emit idiom: a sequence of ≤ 2
/// `MovI rd, imm; EmitBits rd, w` constant pairs (folded into one
/// ≤ 32-bit code), optionally ending in a single `EmitB src, imm`
/// (kept dynamic — it reads `src` live). Any register the block
/// touches must be neither `R13` (the burst defers the symbol latch)
/// nor `R15` (reads the deferred stream cursor). Mirrored by the
/// verifier's `fused_bitemit_blocks` certification count.
fn recognize_bitemit(acts: &[Action]) -> Option<BitEmitShape> {
    let mut code: u64 = 0;
    let mut len: u32 = 0;
    let mut writes: Vec<(u8, u32)> = Vec::new();
    let mut i = 0;
    let banned = |r: udp_isa::Reg| r == udp_isa::Reg::R13 || r == udp_isa::Reg::R15;
    while i < acts.len() {
        let a = &acts[i];
        if a.op == Opcode::MovI && i + 1 < acts.len() {
            let e = &acts[i + 1];
            if e.op != Opcode::EmitBits || e.src != a.dst || banned(a.dst) {
                return None;
            }
            let w = u32::from(e.imm1.clamp(1, 16));
            code = (code << w) | u64::from(u32::from(a.imm) & ((1u32 << w) - 1));
            len += w;
            writes.retain(|&(r, _)| r != a.dst.index());
            writes.push((a.dst.index(), u32::from(a.imm)));
            if writes.len() > 2 || len > 32 {
                return None;
            }
            i += 2;
        } else if a.op == Opcode::EmitB && i + 1 == acts.len() && !banned(a.src) {
            let mut ws = [(0u8, 0u32); 2];
            for (slot, &w) in ws.iter_mut().zip(&writes) {
                *slot = w;
            }
            return Some(BitEmitShape {
                code: code as u32,
                len: len as u8,
                writes: ws,
                nwrites: writes.len() as u8,
                dyn_byte: Some((a.src.index(), a.imm)),
            });
        } else {
            return None;
        }
    }
    if len == 0 {
        return None;
    }
    let mut ws = [(0u8, 0u32); 2];
    for (slot, &w) in ws.iter_mut().zip(&writes) {
        *slot = w;
    }
    Some(BitEmitShape {
        code: code as u32,
        len: len as u8,
        writes: ws,
        nwrites: writes.len() as u8,
        dyn_byte: None,
    })
}

/// A non-trivial taken transition: enough to re-enter the interpreter's
/// `take()` with exactly the bookkeeping the dispatch would have done.
#[derive(Debug, Clone)]
pub(crate) struct GeneralEntry {
    /// The decoded transition to take.
    pub(crate) t: TransitionWord,
    /// True when this entry sits behind a signature miss (fallback
    /// taken): one extra cycle, one extra counted read, one
    /// fallback-miss count.
    pub(crate) miss: bool,
    /// Precomputed successor state index (valid while the window base
    /// register still matches the compile-time value), or `u32::MAX`
    /// when the transition halts.
    pub(crate) next: u32,
    /// The transition's action block, resolved and decoded at compile
    /// time. Valid while the lane's attach bases still hold the
    /// image-init values (checked at dispatch) and the code span is
    /// pristine (monitored inside the cached run). `None` when the
    /// block cannot be specialized — dynamic-walk ops
    /// (`SkipIfZ`/`SkipIfNz`), an undecodable word, or a walk off the
    /// predecoded span — in which case the interpreter's decode-on-read
    /// `take()` runs instead.
    pub(crate) block: Option<CachedBlock>,
    /// Present when the whole transition collapses to one fused
    /// emit-span the burst loop can run in place — without syncing the
    /// stream cursor or tearing the segment down (see [`InlineFused`]).
    pub(crate) inline: Option<InlineFused>,
}

/// A general entry whose action block is exactly one fused
/// [`EmitSpan`] and whose successor re-enters the burst loop: the
/// block reads nothing the burst defers (stream cursor, the `R13`
/// symbol latch, cycle counters) and writes nothing the specialization
/// depends on (window/attach bases, the code span, symbol width), so
/// the segment loop runs it inline between trivial bytes. The attach
/// bases are still checked at dispatch, like every cached block.
#[derive(Debug, Clone)]
pub(crate) struct InlineFused {
    /// The fused prefix (here: the whole block).
    pub(crate) f: EmitSpan,
    /// Successor state index — statically a burstable consuming state.
    pub(crate) next: usize,
}

/// A compile-time-resolved action block (see [`GeneralEntry::block`]).
#[derive(Debug, Clone)]
pub(crate) struct CachedBlock {
    /// Flat word address the block lives at (origin 0).
    pub(crate) flat: u32,
    /// The decoded actions, through the `last` marker inclusive.
    pub(crate) acts: Box<[Action]>,
    /// True when no action in the block can write local memory
    /// (`StoreW`/`StoreB`/`BumpW`/`LoopCpy`), so the pristine-code flag
    /// cannot drop mid-block and the per-action re-validation is dead.
    pub(crate) pure_code: bool,
    /// Fused span-emit prefix when the block opens with the
    /// `InIdx; Sub; LoopIn; EmitB; InIdx` idiom (see [`EmitSpan`]).
    pub(crate) fused: Option<EmitSpan>,
}

/// A pass-through state's fallback word, pre-resolved at compile time.
#[derive(Debug, Clone)]
pub(crate) enum PassPlan {
    /// Fallback slot outside the verbatim image: deoptimize before
    /// charging anything.
    Deopt,
    /// Zero fallback word: `NoTransition` after the dispatch charge.
    NoTransition,
    /// `CHAIN_CONTINUE_SIGNATURE` outside NFA mode: typed fault.
    FaultChain,
    /// A signature that is neither a refill count, the fallback marker,
    /// nor the chain marker: typed fault carrying the signature.
    FaultBadSig(u8),
    /// Take the transition; `refill` bits are put back first when
    /// `Some` (with the stream-underflow check), `None` for the plain
    /// `FALLBACK_SIGNATURE` form.
    Take {
        /// The decoded fallback transition.
        t: TransitionWord,
        /// Bits to put back before taking (refill transition).
        refill: Option<u8>,
        /// Precomputed successor state index, or `u32::MAX`.
        next: u32,
    },
}

/// One compiled dispatch state.
#[derive(Debug, Clone)]
pub(crate) struct StateInfo {
    /// Flat base address of the state's slot block (origin 0).
    pub(crate) base: u32,
    /// How the state sources its dispatch value.
    pub(crate) kind: ExecKind,
    /// True when the state's dense row contains at least one trivial
    /// (packed hit/miss) entry, i.e. entering the burst loop here can
    /// actually make progress. Action-per-symbol states (every arc
    /// carries an action block) skip straight to single-step dispatch
    /// instead of paying the burst setup for an immediate exit.
    pub(crate) burstable: bool,
    /// For `Pass` states: the precompiled fallback plan.
    pub(crate) pass: Option<PassPlan>,
}

/// A program specialized for tier-2 execution: per-state dense dispatch
/// tables plus side tables, produced once at load time by
/// [`CompiledProgram::compile`] and shared read-only by every lane of
/// the run.
#[derive(Debug)]
pub(crate) struct CompiledProgram {
    pub(crate) states: Vec<StateInfo>,
    /// One packed 256-entry row per state, indexed directly by the
    /// dispatch value (rows keep the hot lookup at a single
    /// row-bounds check — the byte index into a fixed-size array needs
    /// none).
    pub(crate) dense: Vec<[u32; 256]>,
    pub(crate) general: Vec<GeneralEntry>,
    /// Per-state bit-burst dispatch rows (parallel to `states`):
    /// indexes into `bitemits`, [`BITEMIT_NONE`] for unfused values.
    /// `None` for states the bit-burst loop never enters (non-consume
    /// kinds, or rows with nothing it could run).
    pub(crate) bit_tables: Vec<Option<Box<[u16; 256]>>>,
    pub(crate) bitemits: Vec<BitEmit>,
    /// `(flat base, kind code)` → state index, for re-resolving the
    /// current state after an action block moved the lane somewhere a
    /// precomputed successor hint does not cover.
    index: HashMap<(u32, u8), u32>,
    /// The window base register value the tables were specialized
    /// against; a lane whose `wbase` diverges (a `SetBase` action ran)
    /// must deoptimize.
    pub(crate) wbase: u32,
    /// Image-init attach base the cached action blocks were resolved
    /// against; a lane whose `abase` diverges runs blocks through the
    /// interpreter's `take()` instead.
    pub(crate) abase: u32,
    /// Image-init attach scale, same caveat as `abase`.
    pub(crate) ascale: u8,
}

/// Stable small integer for an [`ExecKind`] (index-map key).
pub(crate) fn kind_code(k: ExecKind) -> u8 {
    match k {
        ExecKind::Consume => 0,
        ExecKind::Flagged => 1,
        ExecKind::Pass => 2,
        ExecKind::Halt => 3,
    }
}

/// Is this taken transition trivial — no attached actions and a
/// consuming successor — so the whole dispatch can be one packed table
/// word? (The exact condition of the interpreter's tight loop.)
fn is_trivial(t: &TransitionWord) -> bool {
    t.attach() == 0 && t.kind() == ExecKind::Consume
}

/// Resolves and decodes `t`'s action block against the image-init
/// attach bases. The walk mirrors `run_action_block`'s addressing
/// (strictly linear, `last` terminates) and bails to `None` — meaning
/// "run this block decode-on-read" — on anything it cannot prove
/// static: skip ops make the walk data-dependent, a `None` table slot
/// is an undecodable word the runtime must fault on itself, and a walk
/// off the predecoded span would read live memory.
fn cache_block(
    decoded: &DecodedProgram,
    t: &TransitionWord,
    abase: u32,
    ascale: u8,
    try_fuse: bool,
) -> Option<CachedBlock> {
    let flat = t.action_addr(abase, ascale)?;
    let table = decoded.actions();
    let mut block = Vec::new();
    let mut addr = flat as usize;
    loop {
        if block.len() >= BLOCK_CAP {
            return None;
        }
        let &(_, a) = table.get(addr)?;
        let a = a?;
        if matches!(a.op, Opcode::SkipIfZ | Opcode::SkipIfNz) {
            return None;
        }
        let last = a.last;
        block.push(a);
        if last {
            let pure_code = !block.iter().any(|a| {
                matches!(
                    a.op,
                    Opcode::StoreW | Opcode::StoreB | Opcode::BumpW | Opcode::LoopCpy
                )
            });
            let fused = if try_fuse {
                EmitSpan::recognize(&block)
            } else {
                None
            };
            return Some(CachedBlock {
                flat,
                acts: block.into_boxed_slice(),
                pure_code,
                fused,
            });
        }
        addr += 1;
    }
}

/// Decides [`GeneralEntry::inline`] eligibility (see [`InlineFused`]).
fn inline_fused(ge: &GeneralEntry, states: &[StateInfo]) -> Option<InlineFused> {
    let cb = ge.block.as_ref()?;
    let f = cb.fused.as_ref()?;
    if cb.acts.len() != EMIT_SPAN_LEN || f.touches_r13() {
        return None;
    }
    let next = usize::try_from(ge.next)
        .ok()
        .filter(|&i| i < states.len())?;
    let si = &states[next];
    (si.kind == ExecKind::Consume && si.burstable).then(|| InlineFused { f: f.clone(), next })
}

/// Tries to fuse one general dispatch into a [`BitEmit`]: the encoder
/// shape (the arc's own cached block matches `recognize_bitemit` and
/// lands in a consuming state) or the decoder shape (an action-less
/// arc into a pass state whose precompiled plan refill-putbacks and
/// takes a single-`EmitB` block back to a consuming state). `None`
/// leaves the dispatch to the dense-table machinery.
fn bitemit_entry(
    ge: &GeneralEntry,
    states: &[StateInfo],
    decoded: &DecodedProgram,
    abase: u32,
    ascale: u8,
) -> Option<BitEmit> {
    let next_consume = |i: u32| {
        usize::try_from(i)
            .ok()
            .filter(|&i| i < states.len() && states[i].kind == ExecKind::Consume)
    };
    if let Some(cb) = &ge.block {
        // Encoder shape. A span-fused block has its own inline path.
        if cb.fused.is_some() {
            return None;
        }
        let next = next_consume(ge.next)?;
        let sh = recognize_bitemit(&cb.acts)?;
        return Some(BitEmit {
            code: sh.code,
            len: sh.len,
            miss: ge.miss,
            dyn_byte: sh.dyn_byte,
            pass_mid: None,
            refill: 0,
            writes: sh.writes,
            nwrites: sh.nwrites,
            nacts: cb.acts.len() as u8,
            next: next as u32,
        });
    }
    // Decoder shape: hop through a pass state.
    if ge.t.attach() != 0 || ge.t.kind() != ExecKind::Pass {
        return None;
    }
    let pi = usize::try_from(ge.next)
        .ok()
        .filter(|&i| i < states.len())?;
    let ps = &states[pi];
    if ps.kind != ExecKind::Pass {
        return None;
    }
    let Some(PassPlan::Take {
        t: t2,
        refill,
        next: n2,
    }) = &ps.pass
    else {
        return None;
    };
    if t2.kind() != ExecKind::Consume {
        return None;
    }
    let next = next_consume(*n2)?;
    let cb2 = cache_block(decoded, t2, abase, ascale, false)?;
    let [a] = &cb2.acts[..] else {
        return None;
    };
    if a.op != Opcode::EmitB || a.src == udp_isa::Reg::R13 || a.src == udp_isa::Reg::R15 {
        return None;
    }
    Some(BitEmit {
        code: 0,
        len: 0,
        miss: ge.miss,
        dyn_byte: Some((a.src.index(), a.imm)),
        pass_mid: Some(ps.base),
        refill: refill.unwrap_or(0),
        writes: [(0, 0); 2],
        nwrites: 0,
        nacts: 1,
        next: next as u32,
    })
}

impl CompiledProgram {
    /// Specializes `image` (with its predecoded view) for tier-2
    /// execution at window origin 0 — the layout every pooled lane
    /// runs at. Returns a [`Decline`] when the program cannot (or
    /// should not) be specialized — symbol width beyond the 8-bit
    /// dense-table coverage, a degenerate state explosion, or nothing
    /// either burst loop could run; the caller then just interprets.
    pub(crate) fn compile(image: &ProgramImage, decoded: &DecodedProgram) -> Result<Self, Decline> {
        if !image.executable {
            return Err(Decline::NotExecutable);
        }
        if image.init.symbol_bits > 8 {
            return Err(Decline::WideSymbols);
        }
        let span = image.words.len().min(decoded.transitions().len());
        let wbase = image.init.wbase;
        let (abase, ascale) = (image.init.abase, image.init.ascale);
        // The verifier's certificate counts reachable blocks matching
        // the EmitSpan shape; when it proves there are none, skip the
        // per-block recognizer entirely — its preconditions were
        // already discharged statically. Same gate for the bit-emit
        // (action-per-symbol) recognizer.
        let try_fuse = image.cert.as_ref().is_none_or(|c| c.fused_span_blocks > 0);
        let try_bitemit = image
            .cert
            .as_ref()
            .is_none_or(|c| c.fused_bitemit_blocks > 0);

        // Pass 1: discover the reachable (base, kind) state set.
        let mut index: HashMap<(u32, u8), u32> = HashMap::new();
        let mut states: Vec<StateInfo> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        let intern = |states: &mut Vec<StateInfo>,
                      queue: &mut Vec<usize>,
                      index: &mut HashMap<(u32, u8), u32>,
                      base: u32,
                      kind: ExecKind|
         -> u32 {
            *index.entry((base, kind_code(kind))).or_insert_with(|| {
                let idx = states.len() as u32;
                states.push(StateInfo {
                    base,
                    kind,
                    burstable: false,
                    pass: None,
                });
                queue.push(idx as usize);
                idx
            })
        };
        intern(
            &mut states,
            &mut queue,
            &mut index,
            image.entry_base,
            image.entry_kind,
        );
        let mut head = 0usize;
        while head < queue.len() {
            if states.len() > MAX_STATES {
                return Err(Decline::StateExplosion);
            }
            let st = queue[head];
            head += 1;
            let (base, kind) = (states[st].base, states[st].kind);
            let succ = |states: &mut Vec<StateInfo>,
                        queue: &mut Vec<usize>,
                        index: &mut HashMap<(u32, u8), u32>,
                        t: &TransitionWord| {
                if t.kind() != ExecKind::Halt {
                    intern(
                        states,
                        queue,
                        index,
                        wbase.wrapping_add(u32::from(t.target())),
                        t.kind(),
                    );
                }
            };
            match kind {
                ExecKind::Halt => {}
                ExecKind::Pass => {
                    if let Some(t) = pass_transition(image, decoded, span, base) {
                        succ(&mut states, &mut queue, &mut index, &t);
                    }
                }
                ExecKind::Consume | ExecKind::Flagged => {
                    for s in 0u32..256 {
                        let (hit_t, fb_t) = slot_transitions(image, decoded, span, base, s);
                        if let Some(t) = hit_t {
                            succ(&mut states, &mut queue, &mut index, &t);
                        } else if let Some(t) = fb_t {
                            succ(&mut states, &mut queue, &mut index, &t);
                        }
                    }
                }
            }
        }

        // Pass 2: every state index is now known; fill the tables.
        let n = states.len();
        let mut dense = vec![[EXIT_DEOPT; 256]; n];
        let mut general: Vec<GeneralEntry> = Vec::new();
        let resolve = |t: &TransitionWord| -> u32 {
            if t.kind() == ExecKind::Halt {
                return u32::MAX;
            }
            let key = (
                wbase.wrapping_add(u32::from(t.target())),
                kind_code(t.kind()),
            );
            index.get(&key).copied().unwrap_or(u32::MAX)
        };
        for st in 0..n {
            let (base, kind) = (states[st].base, states[st].kind);
            match kind {
                ExecKind::Halt => {}
                ExecKind::Pass => {
                    states[st].pass = Some(pass_plan(image, decoded, span, base, &resolve));
                }
                ExecKind::Consume | ExecKind::Flagged => {
                    for s in 0u32..256 {
                        let (hit_t, fb_t) = slot_transitions(image, decoded, span, base, s);
                        let entry = match (hit_t, fb_t) {
                            (Some(t), _) => {
                                let next = resolve(&t);
                                if is_trivial(&t) && next != u32::MAX {
                                    TAG_HIT | next
                                } else {
                                    let g = general.len() as u32;
                                    let block = cache_block(decoded, &t, abase, ascale, try_fuse);
                                    general.push(GeneralEntry {
                                        t,
                                        miss: false,
                                        next,
                                        block,
                                        inline: None,
                                    });
                                    TAG_GENERAL | g
                                }
                            }
                            (None, Some(t)) => {
                                let next = resolve(&t);
                                if is_trivial(&t) && next != u32::MAX {
                                    TAG_MISS | next
                                } else {
                                    let g = general.len() as u32;
                                    let block = cache_block(decoded, &t, abase, ascale, try_fuse);
                                    general.push(GeneralEntry {
                                        t,
                                        miss: true,
                                        next,
                                        block,
                                        inline: None,
                                    });
                                    TAG_GENERAL | g
                                }
                            }
                            (None, None) => {
                                // Distinguish "absent fallback word"
                                // (NoTransition) from "slot outside the
                                // verbatim image" (deopt).
                                let slot = u64::from(base) + u64::from(s);
                                let fb = u64::from(base) + u64::from(udp_isa::FALLBACK_SLOT);
                                if slot < span as u64 && fb < span as u64 {
                                    EXIT_NO_TRANSITION
                                } else {
                                    EXIT_DEOPT
                                }
                            }
                        };
                        if (general.len() as u32) > PAYLOAD_MASK {
                            return Err(Decline::TableOverflow);
                        }
                        dense[st][s as usize] = entry;
                    }
                    states[st].burstable = dense[st].iter().any(|&e| e < TAG_GENERAL);
                }
            }
        }

        // Pass 3: mark the general entries the burst loop can run fully
        // inline — whole block one fused emit-span, no `R13` traffic,
        // successor a burstable consuming state (so the segment
        // continues over the same slice with the sync still deferred).
        for ge in &mut general {
            ge.inline = inline_fused(ge, &states);
        }

        // Pass 4: bit-burst rows. Every consuming state gets a parallel
        // 256-entry row of fused dispatches: trivial hits/misses carry
        // over as-is (so mixed states keep bursting), and general
        // dispatches matching the action-per-symbol emit idiom fold to
        // one [`BitEmit`] each. The row is the sub-byte/misaligned twin
        // of the dense byte-burst — it is what makes action-per-symbol
        // kernels (Huffman encode/decode, bit-packing) compile at all.
        let mut bit_tables: Vec<Option<Box<[u16; 256]>>> = vec![None; n];
        let mut bitemits: Vec<BitEmit> = Vec::new();
        let mut any_bitfused = false;
        for st in 0..n {
            if states[st].kind != ExecKind::Consume {
                continue;
            }
            let mut row = Box::new([BITEMIT_NONE; 256]);
            let mut populated = false;
            for s in 0..256usize {
                let e = dense[st][s];
                let be = if e < TAG_GENERAL {
                    // Trivial hit/miss: 1 (+1 miss) cycle, same reads.
                    Some(BitEmit {
                        code: 0,
                        len: 0,
                        miss: e >= TAG_MISS,
                        dyn_byte: None,
                        pass_mid: None,
                        refill: 0,
                        writes: [(0, 0); 2],
                        nwrites: 0,
                        nacts: 0,
                        next: e & PAYLOAD_MASK,
                    })
                } else if e < TAG_EXIT && try_bitemit {
                    let ge = &general[(e & PAYLOAD_MASK) as usize];
                    bitemit_entry(ge, &states, decoded, abase, ascale)
                } else {
                    None
                };
                if let Some(be) = be {
                    if bitemits.len() >= usize::from(BITEMIT_NONE) {
                        break;
                    }
                    any_bitfused |= be.len > 0 || be.dyn_byte.is_some();
                    row[s] = bitemits.len() as u16;
                    bitemits.push(be);
                    populated = true;
                }
            }
            if populated {
                bit_tables[st] = Some(row);
            }
        }

        // A program with no trivial arcs anywhere *and* no fusable
        // action-per-symbol arcs has nothing either burst loop can
        // specialize: measured, the table indirection only adds
        // overhead over the interpreter's own dispatch. Decline, so
        // selection stays a pure speed knob.
        if !states.iter().any(|s| s.burstable) && !any_bitfused {
            return Err(Decline::NoFusableArcs);
        }

        Ok(CompiledProgram {
            states,
            dense,
            general,
            bit_tables,
            bitemits,
            index,
            wbase,
            abase,
            ascale,
        })
    }

    /// Re-resolves the lane's current `(base, kind)` to a compiled
    /// state index, if one exists.
    pub(crate) fn lookup(&self, base: u32, kind: ExecKind) -> Option<u32> {
        self.index.get(&(base, kind_code(kind))).copied()
    }
}

/// The decoded transitions governing dispatch value `s` at a
/// consuming/flagged state `base`, from the verbatim image:
/// `(signature hit, fallback on miss)`. Either side is `None` when it
/// does not apply *or* cannot be resolved from the image (caller
/// disambiguates via the span).
fn slot_transitions(
    image: &ProgramImage,
    decoded: &DecodedProgram,
    span: usize,
    base: u32,
    s: u32,
) -> (Option<TransitionWord>, Option<TransitionWord>) {
    let slot = u64::from(base) + u64::from(s);
    if slot >= span as u64 {
        return (None, None);
    }
    let raw = image.words[slot as usize];
    if raw != 0 && (raw >> 24) as u8 == (s & 0xFF) as u8 {
        let t = decoded
            .transition(slot as usize, raw)
            .unwrap_or_else(|| TransitionWord::decode(raw));
        return (Some(t), None);
    }
    // Signature miss: the fallback slot decides.
    let fb_slot = u64::from(base) + u64::from(udp_isa::FALLBACK_SLOT);
    if fb_slot >= span as u64 {
        return (None, None);
    }
    let fb = image.words[fb_slot as usize];
    if fb == 0 {
        return (None, None);
    }
    let t = decoded
        .transition(fb_slot as usize, fb)
        .unwrap_or_else(|| TransitionWord::decode(fb));
    (None, Some(t))
}

/// The fallback transition a pass state takes, if resolvable from the
/// verbatim image.
fn pass_transition(
    image: &ProgramImage,
    decoded: &DecodedProgram,
    span: usize,
    base: u32,
) -> Option<TransitionWord> {
    let fb_slot = u64::from(base) + u64::from(udp_isa::FALLBACK_SLOT);
    if fb_slot >= span as u64 {
        return None;
    }
    let raw = image.words[fb_slot as usize];
    if raw == 0 {
        return None;
    }
    Some(
        decoded
            .transition(fb_slot as usize, raw)
            .unwrap_or_else(|| TransitionWord::decode(raw)),
    )
}

/// Precompiles a pass state's fallback word into the runtime plan,
/// replicating the interpreter's signature semantics exactly.
fn pass_plan(
    image: &ProgramImage,
    decoded: &DecodedProgram,
    span: usize,
    base: u32,
    resolve: &dyn Fn(&TransitionWord) -> u32,
) -> PassPlan {
    let fb_slot = u64::from(base) + u64::from(udp_isa::FALLBACK_SLOT);
    if fb_slot >= span as u64 {
        return PassPlan::Deopt;
    }
    let raw = image.words[fb_slot as usize];
    if raw == 0 {
        return PassPlan::NoTransition;
    }
    let t = decoded
        .transition(fb_slot as usize, raw)
        .unwrap_or_else(|| TransitionWord::decode(raw));
    match t.signature() {
        CHAIN_CONTINUE_SIGNATURE => PassPlan::FaultChain,
        FALLBACK_SIGNATURE => {
            let next = resolve(&t);
            PassPlan::Take {
                t,
                refill: None,
                next,
            }
        }
        refill if refill <= 8 => {
            let next = resolve(&t);
            PassPlan::Take {
                t,
                refill: Some(refill),
                next,
            }
        }
        other => PassPlan::FaultBadSig(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{Lane, LaneConfig};
    use crate::memory::LocalMemory;
    use crate::stream::{BitStream, OutputSink};
    use std::sync::Arc;
    use udp_asm::{LayoutOptions, ProgramBuilder, Target};
    use udp_isa::action::{Action, Opcode};
    use udp_isa::Reg;

    /// Two-state scanner: `a` flips between states emitting `!`/`?`,
    /// anything else self-loops trivially (no actions) — so the dense
    /// tables carry both TAG_GENERAL (the emitting arcs) and trivial
    /// TAG_MISS fallbacks the burst loop can chew through.
    fn scanner() -> udp_asm::ProgramImage {
        let mut b = ProgramBuilder::new();
        let s0 = b.add_consuming_state();
        let s1 = b.add_consuming_state();
        b.set_entry(s0);
        b.labeled_arc(
            s0,
            b'a' as u16,
            Target::State(s1),
            vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, b'!' as u16)],
        );
        b.fallback_arc(s0, Target::State(s0), vec![]);
        b.labeled_arc(
            s1,
            b'a' as u16,
            Target::State(s0),
            vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, b'?' as u16)],
        );
        b.fallback_arc(s1, Target::State(s1), vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    /// The compiler must actually engage on bread-and-butter DFA-shaped
    /// programs — this is the non-vacuity anchor for the differential
    /// suites (a silent `None` would make them pass trivially).
    #[test]
    fn scanner_compiles_with_trivial_and_general_entries() {
        let image = scanner();
        let decoded = image.predecode();
        let cp = CompiledProgram::compile(&image, &decoded).expect("scanner must specialize");
        assert_eq!(cp.states.len(), 2, "both consuming states reachable");
        let entry = cp.lookup(image.entry_base, image.entry_kind).unwrap() as usize;
        // The 'a' arc carries an action: general entry.
        let a = cp.dense[entry][b'a' as usize];
        assert_eq!(a & !PAYLOAD_MASK, TAG_GENERAL);
        assert!(!cp.general[(a & PAYLOAD_MASK) as usize].miss);
        // Any other byte misses to the trivial self-loop fallback.
        let b = cp.dense[entry][b'b' as usize];
        assert_eq!(b & !PAYLOAD_MASK, TAG_MISS);
        assert_eq!(b & PAYLOAD_MASK, entry as u32);
    }

    /// A scanner whose delimiter arc carries the `EmitSpan` idiom
    /// (`InIdx; Sub; LoopIn; EmitB; InIdx`) — the csv translator's hot
    /// block, reduced to one state.
    fn span_scanner() -> udp_asm::ProgramImage {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        let (r_start, r_len, r_tmp) = (Reg::new(1), Reg::new(2), Reg::new(3));
        b.labeled_arc(
            s,
            b',' as u16,
            Target::State(s),
            vec![
                Action::imm(Opcode::InIdx, r_tmp, Reg::R0, 0u16.wrapping_sub(1)),
                Action::reg(Opcode::Sub, r_len, r_tmp, r_start),
                Action::reg(Opcode::LoopIn, Reg::R0, r_start, r_len),
                Action::imm(Opcode::EmitB, Reg::R0, Reg::new(12), u16::from(b'|')),
                Action::imm(Opcode::InIdx, r_start, Reg::R0, 0),
            ],
        );
        b.fallback_arc(s, Target::State(s), vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    /// The verifier's `fused_span_blocks` count and the compiler's own
    /// recognizer must agree: every block the compiler fuses is one the
    /// certificate counted (the cert mirrors `EmitSpan::recognize`), and
    /// a certified count of zero disables recognition without losing
    /// any fusion.
    #[test]
    fn cert_span_count_is_consistent_with_fusion() {
        let image = span_scanner();
        let report = udp_verify::verify_image(&image, &udp_verify::VerifyOptions::default());
        let cert = report.cert.expect("cost pass must run on a clean image");
        assert!(cert.fused_span_blocks > 0, "{}", cert.summary());

        let decoded = image.predecode();
        let count_fused = |cp: &CompiledProgram| {
            cp.general
                .iter()
                .filter_map(|g| g.block.as_ref())
                .filter(|b| b.fused.is_some())
                .map(|b| b.flat)
                .collect::<std::collections::BTreeSet<u32>>()
                .len() as u32
        };
        let cp = CompiledProgram::compile(&image, &decoded).expect("must specialize");
        let fused = count_fused(&cp);
        assert!(fused > 0, "span idiom must fuse");
        assert!(
            fused <= cert.fused_span_blocks,
            "compiler fused {fused} blocks but cert counted {}",
            cert.fused_span_blocks
        );

        // A cert claiming zero span blocks turns the recognizer off.
        let mut gated = image.clone();
        gated.cert = Some(udp_asm::ResourceCert {
            fused_span_blocks: 0,
            ..cert.clone()
        });
        let cp0 = CompiledProgram::compile(&gated, &decoded).expect("must specialize");
        assert_eq!(count_fused(&cp0), 0);

        // And the true cert attached leaves fusion identical.
        let mut certified = image.clone();
        certified.cert = Some(cert);
        let cp1 = CompiledProgram::compile(&certified, &decoded).expect("must specialize");
        assert_eq!(count_fused(&cp1), fused);
    }

    /// Direct exec-level differential: `run_compiled` vs `Lane::run` on
    /// the same program and input, comparing the full reports (the
    /// burst loop, general entries, and EOF exit all engage here).
    #[test]
    fn run_compiled_matches_interpreter_report_exactly() {
        let image = scanner();
        let decoded = Arc::new(image.predecode());
        let cp = CompiledProgram::compile(&image, &decoded).expect("scanner must specialize");
        let cfg = LaneConfig::default();
        let input: Vec<u8> = b"xxaxa__aaa".repeat(97);

        let run = |compiled: bool| {
            let mut mem = LocalMemory::with_words(8192);
            mem.set_bank_tracking(false);
            mem.load_words(0, &image.words);
            mem.reset_counters();
            let mut lane = Lane::with_decoded(&image, 0, Arc::clone(&decoded));
            lane.mark_code_clean();
            let mut stream = BitStream::new(&input);
            let mut out = OutputSink::new();
            if compiled {
                run_compiled(&cp, &mut lane, &mut mem, &mut stream, &mut out, &cfg)
            } else {
                lane.run(&mut mem, &mut stream, &mut out, &cfg)
            }
        };
        let reference = run(false);
        let fast = run(true);
        assert!(!reference.output.is_empty());
        assert_eq!(reference, fast);
    }

    /// A chaos fault injected mid-burst must fire at the same cycle
    /// with the same typed fault on both paths.
    #[test]
    fn chaos_fault_fires_identically_mid_burst() {
        let image = scanner();
        let decoded = Arc::new(image.predecode());
        let cp = CompiledProgram::compile(&image, &decoded).unwrap();
        let cfg = LaneConfig {
            chaos_fault_at: Some(37),
            ..LaneConfig::default()
        };
        let input = vec![b'x'; 4096];
        let run = |compiled: bool| {
            let mut mem = LocalMemory::with_words(8192);
            mem.set_bank_tracking(false);
            mem.load_words(0, &image.words);
            mem.reset_counters();
            let mut lane = Lane::with_decoded(&image, 0, Arc::clone(&decoded));
            lane.mark_code_clean();
            let mut stream = BitStream::new(&input);
            let mut out = OutputSink::new();
            if compiled {
                run_compiled(&cp, &mut lane, &mut mem, &mut stream, &mut out, &cfg)
            } else {
                lane.run(&mut mem, &mut stream, &mut out, &cfg)
            }
        };
        let reference = run(false);
        let fast = run(true);
        assert!(matches!(
            reference.status,
            crate::lane::LaneStatus::Fault(crate::error::FaultKind::ChaosInjected { .. })
        ));
        assert_eq!(reference, fast);
    }

    /// Huffman-encoder-shaped program: every printable arc carries the
    /// `MovI r1; EmitBits r1` idiom (one code per symbol, varying
    /// widths, one symbol split across two pairs), fallback self-loops
    /// trivially. The bit-burst loop's encoder territory.
    fn bit_encoder() -> udp_asm::ProgramImage {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        let r1 = Reg::new(1);
        for (i, sym) in (b'a'..=b'p').enumerate() {
            let mut acts = vec![
                Action::imm(Opcode::MovI, r1, Reg::R0, 0x15 ^ i as u16),
                Action::imm2(Opcode::EmitBits, Reg::R0, r1, 3 + (i as u8 % 7), 0),
            ];
            if sym == b'c' {
                // Long-code split: two pairs, 15 + 4 bits.
                acts = vec![
                    Action::imm(Opcode::MovI, r1, Reg::R0, 0x5a5a),
                    Action::imm2(Opcode::EmitBits, Reg::R0, r1, 15, 0),
                    Action::imm(Opcode::MovI, r1, Reg::R0, 0x9),
                    Action::imm2(Opcode::EmitBits, Reg::R0, r1, 4, 0),
                ];
            }
            b.labeled_arc(s, u16::from(sym), Target::State(s), acts);
        }
        b.fallback_arc(s, Target::State(s), vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    /// A 2-bit-symbol decoder in the refill idiom: codes `0` (1 bit),
    /// `10`, `11`; over-consumed bits are put back by refill pass
    /// states whose single-`EmitB` blocks emit the decoded byte. The
    /// sub-byte widths and putbacks keep the cursor misaligned — the
    /// bit-burst loop's decoder territory.
    fn bit_decoder() -> udp_asm::ProgramImage {
        let mut b = ProgramBuilder::new();
        b.set_symbol_bits(2);
        let root = b.add_consuming_state();
        b.set_entry(root);
        let emit = |sym: u8| Action::imm(Opcode::EmitB, Reg::R0, Reg::new(12), u16::from(sym));
        let leaf = |b: &mut ProgramBuilder, sym: u8, refill: u8| {
            b.add_pass_state(
                refill,
                udp_asm::Arc {
                    target: Target::State(root),
                    actions: vec![emit(sym)],
                },
            )
        };
        let z = leaf(&mut b, b'z', 1);
        let y = leaf(&mut b, b'y', 0);
        let x = leaf(&mut b, b'x', 0);
        b.labeled_arc(root, 0b00, Target::State(z), vec![]);
        b.labeled_arc(root, 0b01, Target::State(z), vec![]);
        b.labeled_arc(root, 0b10, Target::State(y), vec![]);
        b.labeled_arc(root, 0b11, Target::State(x), vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    /// Full-report differential between `run_compiled` and `Lane::run`
    /// on `image` over `input`, requiring non-empty output (so the
    /// fused paths demonstrably ran).
    fn assert_backends_match(image: &udp_asm::ProgramImage, input: &[u8], cfg: &LaneConfig) {
        let decoded = Arc::new(image.predecode());
        let cp = CompiledProgram::compile(image, &decoded).expect("must specialize");
        let run = |compiled: bool| {
            let mut mem = LocalMemory::with_words(8192);
            mem.set_bank_tracking(false);
            mem.load_words(0, &image.words);
            mem.reset_counters();
            let mut lane = Lane::with_decoded(image, 0, Arc::clone(&decoded));
            lane.mark_code_clean();
            let mut stream = BitStream::new(input);
            let mut out = OutputSink::new();
            if compiled {
                run_compiled(&cp, &mut lane, &mut mem, &mut stream, &mut out, cfg)
            } else {
                lane.run(&mut mem, &mut stream, &mut out, cfg)
            }
        };
        let reference = run(false);
        let fast = run(true);
        assert!(!reference.output.is_empty());
        assert_eq!(reference, fast);
    }

    /// The encoder shape must fuse into bit-table entries (non-vacuity
    /// for the bit-burst loop) and reproduce the interpreter's report
    /// bit-for-bit, including under a mid-run cycle cap.
    #[test]
    fn bitemit_encoder_fuses_and_matches_interpreter() {
        let image = bit_encoder();
        let decoded = image.predecode();
        let cp = CompiledProgram::compile(&image, &decoded).expect("must specialize");
        let entry = cp.lookup(image.entry_base, image.entry_kind).unwrap() as usize;
        let tbl = cp.bit_tables[entry].as_ref().expect("bit row must exist");
        let fused = (0..256)
            .filter(|&s| tbl[s] != BITEMIT_NONE && cp.bitemits[usize::from(tbl[s])].len > 0)
            .count();
        assert_eq!(fused, 16, "every coded symbol must fuse");

        let input: Vec<u8> = b"abcdefghijklmnop__ppcaa".repeat(211);
        assert_backends_match(&image, &input, &LaneConfig::default());
        // A tight budget trips the folded cap mid-burst.
        assert_backends_match(
            &image,
            &input,
            &LaneConfig {
                max_cycles: 701,
                cycles_per_byte: 1,
                min_cycle_budget: 1,
                ..LaneConfig::default()
            },
        );
        // Chaos fault lands at the same cycle mid-burst.
        assert_backends_match(
            &image,
            &input,
            &LaneConfig {
                chaos_fault_at: Some(443),
                ..LaneConfig::default()
            },
        );
    }

    /// The decoder (refill) shape must fuse — `pass_mid` entries with a
    /// dynamic byte — and reproduce the interpreter bit-for-bit across
    /// sub-byte dispatch, putbacks, and the mid-shape cap re-check.
    #[test]
    fn bitemit_decoder_fuses_and_matches_interpreter() {
        let image = bit_decoder();
        let decoded = image.predecode();
        let cp = CompiledProgram::compile(&image, &decoded).expect("must specialize");
        assert!(
            cp.bitemits
                .iter()
                .any(|e| e.pass_mid.is_some() && e.dyn_byte.is_some()),
            "decoder shape must fuse through the pass state"
        );

        // Pseudo-random bits wander the whole table; the trailing
        // zeros decode as runs of 'z'.
        let mut input: Vec<u8> = (0..2048u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        input.extend_from_slice(&[0; 8]);
        assert_backends_match(&image, &input, &LaneConfig::default());
        for cap in [700, 701, 702, 703] {
            // Sweep the cap across the decoder shape's charge sequence
            // so it trips both before and between its two dispatches.
            assert_backends_match(
                &image,
                &input,
                &LaneConfig {
                    max_cycles: cap,
                    cycles_per_byte: 1,
                    min_cycle_budget: 1,
                    ..LaneConfig::default()
                },
            );
        }
        assert_backends_match(
            &image,
            &input,
            &LaneConfig {
                chaos_fault_at: Some(997),
                ..LaneConfig::default()
            },
        );
    }

    /// The verifier's `fused_bitemit_blocks` count and the compiler's
    /// bit-emit recognizer must agree, mirroring the span-count
    /// consistency contract: a certified count of zero disables the
    /// recognizer without losing fusion elsewhere, and the true cert
    /// changes nothing.
    #[test]
    fn cert_bitemit_count_is_consistent_with_fusion() {
        let image = bit_encoder();
        let report = udp_verify::verify_image(&image, &udp_verify::VerifyOptions::default());
        let cert = report.cert.expect("cost pass must run on a clean image");
        assert!(cert.fused_bitemit_blocks > 0, "{}", cert.summary());

        let decoded = image.predecode();
        let count_bitfused = |cp: &CompiledProgram| {
            cp.bitemits
                .iter()
                .filter(|e| e.len > 0 || e.dyn_byte.is_some())
                .count()
        };
        let cp = CompiledProgram::compile(&image, &decoded).expect("must specialize");
        let fused = count_bitfused(&cp);
        assert!(fused > 0, "bit-emit idiom must fuse");

        // A cert claiming zero bit-emit blocks turns the recognizer off.
        let mut gated = image.clone();
        gated.cert = Some(udp_asm::ResourceCert {
            fused_bitemit_blocks: 0,
            ..cert.clone()
        });
        let cp0 = CompiledProgram::compile(&gated, &decoded).expect("must specialize");
        assert_eq!(count_bitfused(&cp0), 0);

        // And the true cert attached leaves fusion identical.
        let mut certified = image.clone();
        certified.cert = Some(cert);
        let cp1 = CompiledProgram::compile(&certified, &decoded).expect("must specialize");
        assert_eq!(count_bitfused(&cp1), fused);
    }

    /// Symbol widths beyond the dense-table coverage must decline to
    /// specialize rather than mis-run.
    #[test]
    fn wide_symbols_fall_back_to_the_interpreter() {
        let image = scanner();
        let mut wide = image.clone();
        wide.init.symbol_bits = 12;
        assert_eq!(
            CompiledProgram::compile(&wide, &wide.predecode()).err(),
            Some(Decline::WideSymbols)
        );
    }
}

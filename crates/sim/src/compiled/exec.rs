//! The tier-2 runtime: drives a live [`Lane`] through the compiled
//! dispatch tables, then hands the lane back to [`Lane::run`] — which
//! either assembles the final report from a terminal status or, after
//! a deoptimization, resumes interpreting from the exact architectural
//! state the compiled loop left. Every modeled counter (cycles,
//! dispatches, fallback misses, counted reads, the R13 symbol latch)
//! advances exactly as the interpreter would, so the reconstructed
//! report is bit-identical either way.

use super::{
    CachedBlock, CompiledProgram, PassPlan, BITEMIT_NONE, EXIT_NO_TRANSITION, PAYLOAD_MASK,
    TAG_EXIT, TAG_GENERAL, TAG_MISS,
};
use crate::error::FaultKind;
use crate::lane::{cap_status, CodeTables, Lane, LaneConfig, LaneReport, LaneStatus};
use crate::memory::LocalMemory;
use crate::stream::{BitStream, OutputSink};
use udp_asm::layout::CHAIN_CONTINUE_SIGNATURE;
use udp_isa::transition::{ExecKind, TransitionWord};

/// Where the compiled loop goes after one dispatch.
enum Next {
    /// Keep executing compiled code in this state.
    State(usize),
    /// The lane reached a terminal status.
    Stop,
    /// Hand the lane (still `Running`) back to the interpreter.
    Deopt,
}

/// Runs one chunk through the compiled backend. Falls back to plain
/// interpretation — before starting, or mid-run via deoptimization —
/// whenever the specialization preconditions stop holding; the final
/// report always comes out of [`Lane::run`]'s assembly, so the
/// semantics/timing split never forks the report shape.
pub(crate) fn run_compiled(
    cp: &CompiledProgram,
    lane: &mut Lane,
    mem: &mut LocalMemory,
    stream: &mut BitStream<'_>,
    out: &mut OutputSink,
    cfg: &LaneConfig,
) -> LaneReport {
    // Specialization preconditions: batched read credits need bank
    // tracking off, tables assume the verbatim image at origin 0 and
    // the compile-time window base. All hold on the pooled local-
    // addressing path; anything else just interprets.
    let dp = lane.decoded.clone();
    if !mem.tracks_banks()
        && lane.code_clean
        && lane.origin == 0
        && lane.wbase == cp.wbase
        && lane.status == LaneStatus::Running
    {
        if let Some(start) = cp.lookup(lane.base, lane.kind) {
            let tables = dp.as_deref().map_or(CodeTables::EMPTY, |d| CodeTables {
                transitions: d.transitions(),
                actions: d.actions(),
            });
            Ctx {
                cp,
                lane,
                mem,
                stream,
                out,
                tables,
            }
            .run(start as usize, cfg);
        }
    }
    // Harvest: terminal status → immediate report assembly; Running
    // (deopt) → the interpreter continues from the live lane state.
    lane.run(mem, stream, out, cfg)
}

/// The mutable machinery one compiled run threads through dispatch
/// handling (bundled so the helpers have one receiver instead of six
/// parameters).
struct Ctx<'a, 'data> {
    cp: &'a CompiledProgram,
    lane: &'a mut Lane,
    mem: &'a mut LocalMemory,
    stream: &'a mut BitStream<'data>,
    out: &'a mut OutputSink,
    tables: CodeTables<'a>,
}

/// How the bit-burst loop ended.
enum BitExit {
    /// The folded cycle cap tripped before a consume dispatch.
    Cap,
    /// The cap tripped between the consume dispatch and the pass step
    /// of the decoder shape: the lane parks *at* the pass state (its
    /// flat base carried in the payload), exactly where the
    /// interpreter's per-dispatch cap check would leave it.
    MidCap(u32),
    /// The pass step's refill putback would underflow the stream
    /// (decoder shape): typed fault, lane parked at the pass state.
    Underflow {
        /// Flat base of the intermediate pass state.
        mid: u32,
        /// The refill bit count that did not fit.
        refill: u8,
    },
    /// Fewer than `sym_bits` bits left.
    Eof,
    /// This dispatch value has no fused entry: resolve it through the
    /// dense table (cap was already checked for this dispatch).
    NotFused,
    /// The successor state has no bit-table row at all: hand the state
    /// back to the outer machinery.
    Unfused,
}

/// How the burst loop ended.
enum BurstExit {
    /// The folded cycle cap tripped (budget or a chaos hook).
    Cap,
    /// The stream ran out of whole bytes.
    Eof,
    /// A non-trivial table entry; the symbol is not yet consumed.
    Entry(u32),
}

impl Ctx<'_, '_> {
    fn run(&mut self, mut st: usize, cfg: &LaneConfig) {
        // Same folded cap as the interpreter: the budget is derived
        // from the chunk length and shares one compare with the chaos
        // hooks; which limit fired is sorted out on the cold exit path.
        let budget = cfg.budget_for(self.stream.len_bits().div_ceil(8) as usize);
        let chaos_panic = cfg.chaos_panic_at.unwrap_or(u64::MAX);
        let chaos_fault = cfg.chaos_fault_at.unwrap_or(u64::MAX);
        let cap = budget.min(chaos_panic).min(chaos_fault);
        while self.lane.status == LaneStatus::Running {
            if self.lane.cycles >= cap {
                self.lane.status = cap_status(self.lane.cycles, budget, chaos_panic, chaos_fault);
                return;
            }
            let next = match self.cp.states[st].kind {
                ExecKind::Halt => {
                    self.lane.status = LaneStatus::Halted(0);
                    return;
                }
                ExecKind::Consume => self.consume(st, cap, budget, chaos_panic, chaos_fault),
                ExecKind::Flagged => {
                    let s = self.lane.regs[0] & 0xFF;
                    let e = self.cp.dense[st][s as usize];
                    self.entry(e, s, false)
                }
                ExecKind::Pass => self.pass(st),
            };
            match next {
                Next::State(i) => st = i,
                Next::Stop | Next::Deopt => return,
            }
        }
    }

    /// Runs consuming-state dispatches until the lane leaves the
    /// consuming world (terminal status, deopt, or a pass/flagged/halt
    /// successor). On the byte-aligned 8-bit fast path whole bursts of
    /// trivial dispatches run as an inner loop over the raw input
    /// slice — one load/compare per byte, counters credited in bulk —
    /// and action-carrying dispatches re-enter the burst directly
    /// instead of bouncing through the outer state machine.
    fn consume(
        &mut self,
        st: usize,
        cap: u64,
        budget: u64,
        chaos_panic: u64,
        chaos_fault: u64,
    ) -> Next {
        let mut st = st;
        loop {
            match self.consume_step(st, cap, budget, chaos_panic, chaos_fault) {
                Next::State(i) if self.cp.states[i].kind == ExecKind::Consume => {
                    // Same per-dispatch cap ordering as the outer loop.
                    if self.lane.cycles >= cap {
                        self.lane.status =
                            cap_status(self.lane.cycles, budget, chaos_panic, chaos_fault);
                        return Next::Stop;
                    }
                    st = i;
                }
                other => return other,
            }
        }
    }

    /// One consuming-state dispatch — or, on the fast path, bursts of
    /// trivial ones with action-carrying dispatches folded in between.
    /// A general entry's symbol consumption and dispatch charges ride
    /// the same bulk credit as the trivial bytes around it, so the hot
    /// csv shape (a dozen copy bytes, then a delimiter with an action
    /// block) never tears the burst down.
    fn consume_step(
        &mut self,
        st: usize,
        cap: u64,
        budget: u64,
        chaos_panic: u64,
        chaos_fault: u64,
    ) -> Next {
        let mut st = st;
        'setup: loop {
            if self.lane.sym_bits != 8
                || self.stream.bit_index() & 7 != 0
                || !self.cp.states[st].burstable
            {
                // The byte-burst below cannot run. The bit-burst loop
                // handles any alignment and any 1–8-bit symbol width,
                // as long as the state has a fused dispatch row.
                if self.cp.bit_tables[st].is_some() {
                    return self.bit_burst(st, cap, budget, chaos_panic, chaos_fault);
                }
                // Otherwise single-step (cap was checked by the caller,
                // matching the interpreter's order).
                let Some(s) = self.stream.read(self.lane.sym_bits) else {
                    self.lane.status = LaneStatus::InputExhausted;
                    return Next::Stop;
                };
                let e = self.cp.dense[st][s as usize];
                return self.entry(e, s, true);
            }
            let cp = self.cp;
            let data = self.stream.data();
            let mut pos = (self.stream.bit_index() >> 3) as usize;
            let mut cur = st;
            // Bulk-credit accumulators, flushed by `credit_burst`: the
            // input position the stream cursor actually sits at, the
            // live cycle count, and the fallback misses since the last
            // flush. Fully-inline general dispatches keep accumulating
            // across segments; everything else flushes first.
            let mut seg_start = pos;
            let mut cyc = self.lane.cycles;
            let mut misses = 0u64;
            // One iteration per burst segment: a run of trivial
            // dispatches ended by at most one general dispatch — run
            // inline when fully fused, through the synced interpreter
            // machinery otherwise — then the next segment continues
            // over the same input slice without re-entering the outer
            // state machine.
            loop {
                // A burst dispatch costs 1 cycle (hit) or 2 (miss), so when
                // the folded cap exceeds the worst case of the remaining
                // slice it cannot trip inside the loop and the per-byte
                // check is dead — which is the common case (the default
                // budget dwarfs chunk sizes) and keeps the hot loop at a
                // load/compare per byte.
                let exit = if cap - cyc > 2 * (data.len() - pos) as u64 {
                    let (p0, m0) = (pos, misses);
                    let mut hit_entry = None;
                    for &b in &data[pos..] {
                        let e = cp.dense[cur][usize::from(b)];
                        if e < TAG_MISS {
                            // Trivial signature hit: 1 cycle, 1 read.
                            cur = e as usize;
                        } else if e < TAG_GENERAL {
                            // Trivial fallback miss: surcharge cycle and read.
                            misses += 1;
                            cur = (e & PAYLOAD_MASK) as usize;
                        } else {
                            hit_entry = Some(e);
                            break;
                        }
                        pos += 1;
                    }
                    cyc += (pos - p0) as u64 + (misses - m0);
                    match hit_entry {
                        Some(e) => BurstExit::Entry(e),
                        None => BurstExit::Eof,
                    }
                } else {
                    loop {
                        // Exact interpreter ordering per dispatch: cap check,
                        // then the symbol read, then the table entry.
                        if cyc >= cap {
                            break BurstExit::Cap;
                        }
                        let Some(&b) = data.get(pos) else {
                            break BurstExit::Eof;
                        };
                        let e = cp.dense[cur][usize::from(b)];
                        if e < TAG_MISS {
                            pos += 1;
                            cyc += 1;
                            cur = e as usize;
                        } else if e < TAG_GENERAL {
                            pos += 1;
                            cyc += 2;
                            misses += 1;
                            cur = (e & PAYLOAD_MASK) as usize;
                        } else {
                            break BurstExit::Entry(e);
                        }
                    }
                };
                // A general entry is a dispatch like any other — fold its
                // symbol consumption and hit/miss charge into the burst's
                // bulk credit rather than re-reading the symbol bit-wise
                // and charging it field by field.
                let mut general = None;
                if let BurstExit::Entry(e) = exit {
                    if e < TAG_EXIT {
                        let ge = &cp.general[(e & PAYLOAD_MASK) as usize];
                        let miss = u64::from(ge.miss);
                        pos += 1;
                        cyc += 1 + miss;
                        misses += miss;
                        general = Some(ge);
                    }
                }
                // Fully-inline general dispatch: the whole block is one
                // fused emit-span that neither observes nor moves
                // anything the bulk credit defers, and its successor
                // bursts — so run it here and keep going over the same
                // slice with the sync still pending. Only the attach
                // bases need their dynamic check (a `SetABase` may have
                // run before this segment).
                if let Some(ge) = general {
                    if let Some(il) = &ge.inline {
                        if self.lane.abase == cp.abase && self.lane.ascale == cp.ascale {
                            match self.lane.run_emit_span_unsynced(
                                &il.f,
                                pos as u32,
                                self.mem,
                                self.stream,
                                self.out,
                            ) {
                                Some(dc) => {
                                    cyc += dc;
                                    // Same per-dispatch cap ordering as the
                                    // interpreter before the next dispatch.
                                    if cyc >= cap {
                                        self.credit_burst(data, seg_start, pos, cur, cyc, misses);
                                        self.lane.status =
                                            cap_status(cyc, budget, chaos_panic, chaos_fault);
                                        return Next::Stop;
                                    }
                                    cur = il.next;
                                    continue;
                                }
                                None => {
                                    // `LoopIn` length fault mid-block: three
                                    // actions architecturally ran (their
                                    // cycles are owed), the lane stops.
                                    cyc += 3;
                                    self.credit_burst(data, seg_start, pos, cur, cyc, misses);
                                    return Next::Stop;
                                }
                            }
                        }
                    }
                }
                // Credit the burst in bulk: same totals the per-dispatch
                // bookkeeping would have accumulated, including the R13
                // latch of the last dispatched symbol and the stream
                // advance.
                self.credit_burst(data, seg_start, pos, cur, cyc, misses);
                if let Some(ge) = general {
                    match self.take(&ge.t, ge.next, ge.block.as_ref()) {
                        Next::State(i) if cp.states[i].kind == ExecKind::Consume => {
                            // The action block may have burned budget (or
                            // tripped a chaos hook): same per-dispatch cap
                            // ordering as the interpreter before going on.
                            if self.lane.cycles >= cap {
                                self.lane.status =
                                    cap_status(self.lane.cycles, budget, chaos_panic, chaos_fault);
                                return Next::Stop;
                            }
                            // Fast re-entry: the block left the cursor
                            // where the burst put it (byte-aligned, same
                            // position — no `SkipB`/`ReadBits` ran) and the
                            // successor can burst, so the next segment
                            // continues over the same slice directly.
                            if cp.states[i].burstable
                                && self.lane.sym_bits == 8
                                && self.stream.bit_index() == (pos as u64) << 3
                            {
                                cur = i;
                                seg_start = pos;
                                cyc = self.lane.cycles;
                                misses = 0;
                                continue;
                            }
                            st = i;
                            continue 'setup;
                        }
                        other => return other,
                    }
                }
                return match exit {
                    BurstExit::Cap => {
                        self.lane.status = cap_status(cyc, budget, chaos_panic, chaos_fault);
                        Next::Stop
                    }
                    BurstExit::Eof => {
                        self.lane.status = LaneStatus::InputExhausted;
                        Next::Stop
                    }
                    BurstExit::Entry(e) => {
                        // Only the rare exit entries (deopt, dead end) are
                        // left: consume the symbol the slow way and let
                        // `entry` put it back if the dispatch deoptimizes.
                        let Some(s) = self.stream.read(8) else {
                            self.lane.status = LaneStatus::InputExhausted;
                            return Next::Stop;
                        };
                        self.entry(e, s, true)
                    }
                };
            }
        }
    }

    /// Flushes the burst accumulators: the same totals the per-dispatch
    /// bookkeeping would have reached — cycle count, dispatch and
    /// fallback-miss counts, the batched read credits, the `R13` latch
    /// of the last dispatched symbol, the stream advance, and the
    /// lane's base register for the state the burst stands at.
    fn credit_burst(
        &mut self,
        data: &[u8],
        seg_start: usize,
        pos: usize,
        cur: usize,
        cyc: u64,
        misses: u64,
    ) {
        let consumed = pos - seg_start;
        let hits = consumed as u64 - misses;
        self.lane.cycles = cyc;
        self.lane.dispatches += hits + misses;
        self.lane.fallback_misses += misses;
        if consumed > 0 {
            self.mem.add_reads(hits + 2 * misses);
            self.lane.regs[13] = u32::from(data[pos - 1]);
            self.stream.skip_bytes(consumed as u32);
            self.lane.base = self.cp.states[cur].base;
        }
    }

    /// The "bit-burst" inner loop (DESIGN.md §2.6.4): runs fused
    /// action-per-symbol dispatches — any alignment, any 1–8-bit
    /// symbol — with the stream bit-cursor, the cycle count, and the
    /// output bit-accumulator all in locals, synced once at exit.
    /// Symbols come straight off the input slice via
    /// [`crate::stream::extract_bits`]; constant emit codes append to a
    /// local accumulator drained a whole word at a time. Every
    /// per-symbol charge replicates the interpreter exactly (see
    /// [`super::BitEmit`]), including the folded-cap re-check between
    /// the consume dispatch and the pass step of the decoder shape.
    fn bit_burst(
        &mut self,
        st: usize,
        cap: u64,
        budget: u64,
        chaos_panic: u64,
        chaos_fault: u64,
    ) -> Next {
        let cp = self.cp;
        let sym_bits = self.lane.sym_bits;
        let wsym = u64::from(sym_bits);
        let data = self.stream.data();
        let len_bits = self.stream.len_bits();
        let mut bitpos = self.stream.bit_index();
        let mut cur = st;
        // Deferred bookkeeping, synced in bulk at every exit: cycles
        // run live (the cap compares against them), the rest
        // accumulate. The R13 symbol latch is deferred as
        // (last_sym, syms) like the byte-burst's.
        let mut cyc = self.lane.cycles;
        let mut disp = 0u64;
        let mut misses = 0u64;
        let mut reads = 0u64;
        let mut acts = 0u64;
        let mut last_sym = 0u32;
        let mut syms = 0u64;
        // The output's sub-byte pending bits move into a local 64-bit
        // accumulator; worst case per symbol is 7 pending + 32 code +
        // 7 pad + 8 dynamic = 54 bits, drained back under 8 after.
        let (mut acc, mut nacc) = self.out.take_pending();
        let exit = loop {
            let Some(tbl) = cp.bit_tables[cur].as_deref() else {
                break BitExit::Unfused;
            };
            // Exact interpreter ordering per dispatch: cap check, then
            // the symbol read, then the table entry.
            if cyc >= cap {
                break BitExit::Cap;
            }
            if len_bits - bitpos < wsym {
                break BitExit::Eof;
            }
            let s = crate::stream::extract_bits(data, bitpos, sym_bits);
            let ei = tbl[s as usize];
            if ei == BITEMIT_NONE {
                break BitExit::NotFused;
            }
            let e = &cp.bitemits[usize::from(ei)];
            let miss = u64::from(e.miss);
            bitpos += wsym;
            cyc += 1 + miss;
            disp += 1;
            misses += miss;
            reads += 1 + miss;
            last_sym = s;
            syms += 1;
            if let Some(mid) = e.pass_mid {
                // Decoder shape: the interpreter re-checks the folded
                // cap before the pass step, with the lane already moved
                // to the pass state.
                if cyc >= cap {
                    break BitExit::MidCap(mid);
                }
                cyc += 1;
                disp += 1;
                reads += 1;
                if u64::from(e.refill) > bitpos {
                    break BitExit::Underflow {
                        mid,
                        refill: e.refill,
                    };
                }
                bitpos -= u64::from(e.refill);
            }
            for &(r, v) in &e.writes[..usize::from(e.nwrites)] {
                self.lane.regs[usize::from(r)] = v;
            }
            let na = u64::from(e.nacts);
            cyc += na;
            reads += na;
            acts += na;
            if e.len > 0 {
                acc = (acc << e.len) | u64::from(e.code);
                nacc += u32::from(e.len);
            }
            if let Some((src, imm)) = e.dyn_byte {
                // `EmitB` semantics: zero-pad the pending bits to a
                // byte boundary, then append the dynamic byte.
                let b = self.lane.regs[usize::from(src)].wrapping_add(u32::from(imm)) as u8;
                let pad = (8 - (nacc & 7)) & 7;
                acc <<= pad;
                nacc += pad;
                acc = (acc << 8) | u64::from(b);
                nacc += 8;
            }
            if nacc >= 8 {
                let rem = nacc & 7;
                self.out
                    .extend_be_bytes(acc >> rem, ((nacc - rem) >> 3) as usize);
                acc &= (1u64 << rem) - 1;
                nacc = rem;
            }
            cur = e.next as usize;
        };
        // Sync: same totals the per-dispatch bookkeeping would have
        // reached, the stream cursor at the deferred bit position, the
        // lane's base/kind at the state the burst stands at, and the
        // sub-byte remainder handed back to the sink.
        self.lane.cycles = cyc;
        self.lane.dispatches += disp;
        self.lane.fallback_misses += misses;
        self.lane.actions_run += acts;
        self.mem.add_reads(reads);
        if syms > 0 {
            self.lane.regs[13] = last_sym;
        }
        self.stream.set_bit_index(bitpos);
        self.lane.base = cp.states[cur].base;
        self.lane.kind = cp.states[cur].kind;
        self.out.put_pending(acc, nacc);
        match exit {
            BitExit::Cap => {
                self.lane.status = cap_status(cyc, budget, chaos_panic, chaos_fault);
                Next::Stop
            }
            BitExit::MidCap(mid) => {
                self.lane.base = mid;
                self.lane.kind = ExecKind::Pass;
                self.lane.status = cap_status(cyc, budget, chaos_panic, chaos_fault);
                Next::Stop
            }
            BitExit::Underflow { mid, refill } => {
                self.lane.base = mid;
                self.lane.kind = ExecKind::Pass;
                self.lane.status = LaneStatus::Fault(FaultKind::StreamUnderflow {
                    requested_bits: refill,
                    consumed_bits: bitpos,
                });
                Next::Stop
            }
            BitExit::Eof => {
                self.lane.status = LaneStatus::InputExhausted;
                Next::Stop
            }
            BitExit::Unfused => Next::State(cur),
            BitExit::NotFused => {
                // Cap was checked for this dispatch inside the loop;
                // consume the symbol the slow way (the stream cursor
                // sits exactly before it) and resolve it through the
                // dense table, which also handles deopt putback.
                let Some(s) = self.stream.read(sym_bits) else {
                    self.lane.status = LaneStatus::InputExhausted;
                    return Next::Stop;
                };
                let e = self.cp.dense[cur][s as usize];
                self.entry(e, s, true)
            }
        }
    }

    /// Applies one non-burst dense-table entry for dispatch value `s`.
    /// `consumed` says whether `s` came off the stream (and must be put
    /// back if this dispatch deoptimizes).
    fn entry(&mut self, e: u32, s: u32, consumed: bool) -> Next {
        if e < TAG_GENERAL {
            // Trivial hit or trivial-fallback miss: fully inlined.
            let miss = u64::from(e >= TAG_MISS);
            self.lane.cycles += 1 + miss;
            self.lane.dispatches += 1;
            self.lane.fallback_misses += miss;
            self.lane.regs[13] = s;
            self.mem.add_reads(1 + miss);
            let i = (e & PAYLOAD_MASK) as usize;
            self.lane.base = self.cp.states[i].base;
            self.lane.kind = ExecKind::Consume;
            Next::State(i)
        } else if e < TAG_EXIT {
            let cp = self.cp;
            let ge = &cp.general[(e & PAYLOAD_MASK) as usize];
            let miss = u64::from(ge.miss);
            self.lane.cycles += 1 + miss;
            self.lane.dispatches += 1;
            self.lane.fallback_misses += miss;
            self.lane.regs[13] = s;
            self.mem.add_reads(1 + miss);
            self.take(&ge.t, ge.next, ge.block.as_ref())
        } else if e == EXIT_NO_TRANSITION {
            // Signature miss, zero fallback word: miss surcharge, then
            // stop — exactly `dispatch_on`'s dead end.
            self.lane.cycles += 2;
            self.lane.dispatches += 1;
            self.lane.fallback_misses += 1;
            self.lane.regs[13] = s;
            self.mem.add_reads(2);
            self.lane.status = LaneStatus::NoTransition;
            Next::Stop
        } else {
            // EXIT_DEOPT: nothing charged yet — un-consume the symbol
            // so the interpreter redoes this dispatch itself.
            if consumed {
                self.stream.putback(self.lane.sym_bits);
            }
            Next::Deopt
        }
    }

    /// Takes a non-trivial transition — through the precompiled action
    /// block when one was cached and the attach bases still hold their
    /// compile-time values, through the interpreter's own `take()`
    /// otherwise — then re-resolves the compiled state, or deoptimizes
    /// when the action block broke a specialization invariant (dirty
    /// code span, retargeted window base, uncompiled successor).
    fn take(&mut self, t: &TransitionWord, hint: u32, block: Option<&CachedBlock>) -> Next {
        match block {
            Some(cb) if self.lane.abase == self.cp.abase && self.lane.ascale == self.cp.ascale => {
                // The cached mirror of `Lane::take`: run the block, then
                // halt or retarget — reading `wbase` only afterwards, so
                // a `SetBase` inside the block lands exactly as the
                // interpreter's ordering has it.
                self.lane.run_cached_block(
                    cb.flat,
                    &cb.acts,
                    cb.pure_code,
                    cb.fused.as_ref(),
                    self.mem,
                    self.stream,
                    self.out,
                    self.tables,
                );
                if self.lane.status != LaneStatus::Running {
                    return Next::Stop;
                }
                if t.kind() == ExecKind::Halt {
                    self.lane.status = LaneStatus::Halted(0);
                    return Next::Stop;
                }
                self.lane.base = self.lane.wbase + u32::from(t.target());
                self.lane.kind = t.kind();
            }
            _ => {
                self.lane
                    .take(t, self.mem, self.stream, self.out, self.tables);
                if self.lane.status != LaneStatus::Running {
                    return Next::Stop;
                }
            }
        }
        if !self.lane.code_clean || self.lane.wbase != self.cp.wbase {
            return Next::Deopt;
        }
        if hint != u32::MAX {
            return Next::State(hint as usize);
        }
        match self.cp.lookup(self.lane.base, self.lane.kind) {
            Some(i) => Next::State(i as usize),
            None => Next::Deopt,
        }
    }

    /// One pass-through dispatch from its precompiled plan.
    fn pass(&mut self, st: usize) -> Next {
        let Some(plan) = self.cp.states[st].pass.clone() else {
            return Next::Deopt;
        };
        match plan {
            PassPlan::Deopt => Next::Deopt,
            PassPlan::NoTransition => {
                self.charge_pass();
                self.lane.status = LaneStatus::NoTransition;
                Next::Stop
            }
            PassPlan::FaultChain => {
                self.charge_pass();
                self.lane.status = LaneStatus::Fault(FaultKind::Addressing {
                    context: "epsilon fork outside NFA mode",
                    value: u32::from(CHAIN_CONTINUE_SIGNATURE),
                });
                Next::Stop
            }
            PassPlan::FaultBadSig(other) => {
                self.charge_pass();
                self.lane.status = LaneStatus::Fault(FaultKind::Addressing {
                    context: "bad pass signature",
                    value: u32::from(other),
                });
                Next::Stop
            }
            PassPlan::Take { t, refill, next } => {
                self.charge_pass();
                if let Some(bits) = refill {
                    if u64::from(bits) > self.stream.bit_index() {
                        self.lane.status = LaneStatus::Fault(FaultKind::StreamUnderflow {
                            requested_bits: bits,
                            consumed_bits: self.stream.bit_index(),
                        });
                        return Next::Stop;
                    }
                    self.stream.putback(bits);
                }
                self.take(&t, next, None)
            }
        }
    }

    /// The fixed cost of a pass-state dispatch: one cycle, one
    /// dispatch, one counted fallback-slot read.
    fn charge_pass(&mut self) {
        self.lane.cycles += 1;
        self.lane.dispatches += 1;
        self.mem.add_reads(1);
    }
}

//! Power, area, and energy models.
//!
//! Constants come from the paper's 28nm TSMC synthesis (Table 3) and its
//! CACTI 6.5 memory modeling (Figure 11c); the run-dependent part charges
//! per-reference memory energy and per-cycle lane power. The CPU
//! comparison constants follow §4.4: a Xeon E5620 at 80 W TDP, with the
//! 8-thread throughput estimated as 8 × single-thread.

use udp_isa::mem::AddressingMode;

/// UDP system power in watts (Table 3: 863.68 mW).
pub const UDP_SYSTEM_WATTS: f64 = 0.86368;
/// Comparison CPU TDP in watts (Xeon E5620).
pub const CPU_TDP_WATTS: f64 = 80.0;
/// UDP clock in GHz (§6: 0.97 ns timing closure → 1 GHz).
pub const UDP_CLOCK_GHZ: f64 = 1.0;

/// Per-component power/area line items (Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Power in milliwatts.
    pub power_mw: f64,
    /// Area in mm².
    pub area_mm2: f64,
}

/// The lane-level breakdown of Table 3 (top half).
pub const LANE_COMPONENTS: [Component; 4] = [
    Component {
        name: "Dispatch Unit",
        power_mw: 0.71,
        area_mm2: 0.022,
    },
    Component {
        name: "SBP Unit",
        power_mw: 0.24,
        area_mm2: 0.008,
    },
    Component {
        name: "Stream Buffer",
        power_mw: 0.22,
        area_mm2: 0.002,
    },
    Component {
        name: "Action Unit",
        power_mw: 0.68,
        area_mm2: 0.021,
    },
];

/// The system-level breakdown of Table 3 (bottom half).
pub const SYSTEM_COMPONENTS: [Component; 4] = [
    Component {
        name: "64 Lanes",
        power_mw: 120.56,
        area_mm2: 3.430,
    },
    Component {
        name: "Vector Registers",
        power_mw: 8.47,
        area_mm2: 0.256,
    },
    Component {
        name: "DLT Engine",
        power_mw: 19.29,
        area_mm2: 0.138,
    },
    Component {
        name: "1MB Local Memory",
        power_mw: 715.36,
        area_mm2: 4.864,
    },
];

/// Reference x86 core for the comparison row of Table 3 (Westmere EP
/// core + L1, scaled to 28nm).
pub const X86_CORE: Component = Component {
    name: "x86 Core+L1",
    power_mw: 9700.0,
    area_mm2: 19.0,
};

/// The UDP power model.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Lane logic power at full activity, mW.
    pub lane_mw: f64,
    /// System power (lanes + memory + infrastructure), W.
    pub system_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            lane_mw: 1.88,
            system_w: UDP_SYSTEM_WATTS,
        }
    }
}

impl PowerModel {
    /// Run energy in joules: cycles × lane power + references × memory
    /// energy (the activity-based view; figure-level comparisons use the
    /// fixed system power like the paper does).
    pub fn run_energy_j(
        &self,
        lane_cycles: u64,
        mem_refs: u64,
        mode: AddressingMode,
        clock_ghz: f64,
    ) -> f64 {
        let lane_j = self.lane_mw * 1e-3 * (lane_cycles as f64 / (clock_ghz * 1e9));
        let mem_j = mem_refs as f64 * mode.energy_pj_per_ref() * 1e-12;
        lane_j + mem_j
    }

    /// Paper-style power efficiency: MB/s per watt at fixed system power.
    pub fn throughput_per_watt(&self, throughput_mbps: f64) -> f64 {
        throughput_mbps / self.system_w
    }

    /// CPU-side power efficiency at TDP.
    pub fn cpu_throughput_per_watt(throughput_mbps: f64) -> f64 {
        throughput_mbps / CPU_TDP_WATTS
    }
}

/// The UDP area model (Table 3 sums).
#[derive(Debug, Clone, Copy)]
pub struct AreaModel;

impl AreaModel {
    /// One lane, mm².
    pub fn lane_mm2() -> f64 {
        LANE_COMPONENTS.iter().map(|c| c.area_mm2).sum()
    }

    /// Full system, mm².
    pub fn system_mm2() -> f64 {
        SYSTEM_COMPONENTS.iter().map(|c| c.area_mm2).sum()
    }

    /// Lane power, mW.
    pub fn lane_mw() -> f64 {
        LANE_COMPONENTS.iter().map(|c| c.power_mw).sum()
    }

    /// System power, mW.
    pub fn system_mw() -> f64 {
        SYSTEM_COMPONENTS.iter().map(|c| c.power_mw).sum()
    }
}

/// CACTI-lite: per-reference energy of a banked scratchpad.
///
/// Calibrated to the paper's Figure 11c endpoints: a 64-bank 1 MB memory
/// costs 4.3 pJ/ref with private-bank access (local/restricted) and
/// 8.8 pJ/ref when every lane can reach every bank (global), the
/// difference being the full-fanout interconnect.
pub fn mem_energy_pj(capacity_bytes: usize, banks: usize, mode: AddressingMode) -> f64 {
    let bank_kb = capacity_bytes as f64 / banks as f64 / 1024.0;
    // Bank access energy grows ~sqrt(capacity); 4.3 pJ at 16 KB.
    let bank_pj = 4.3 * (bank_kb / 16.0).sqrt();
    match mode {
        AddressingMode::Local | AddressingMode::Restricted => bank_pj,
        AddressingMode::Global => {
            // Full crossbar fanout: +17.5% per doubling of bank count.
            let factor = 1.0 + 0.175 * (banks as f64).log2();
            bank_pj * factor
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_sums_match_paper() {
        assert!((AreaModel::lane_mw() - 1.85).abs() < 0.1, "lane ≈ 1.88 mW");
        assert!((AreaModel::lane_mm2() - 0.053).abs() < 0.005);
        assert!((AreaModel::system_mw() - 863.68).abs() < 0.5);
        assert!((AreaModel::system_mm2() - 8.688).abs() < 0.01);
    }

    #[test]
    fn udp_is_an_order_cheaper_than_a_core() {
        assert!(AreaModel::system_mw() < X86_CORE.power_mw / 10.0);
        assert!(AreaModel::system_mm2() < X86_CORE.area_mm2);
    }

    #[test]
    fn cacti_lite_hits_figure_11c_endpoints() {
        let local = mem_energy_pj(1 << 20, 64, AddressingMode::Local);
        let global = mem_energy_pj(1 << 20, 64, AddressingMode::Global);
        assert!((local - 4.3).abs() < 0.05, "local = {local}");
        assert!((global - 8.8).abs() < 0.15, "global = {global}");
        assert!(global > 2.0 * local * 0.99);
    }

    #[test]
    fn run_energy_scales_with_activity() {
        let pm = PowerModel::default();
        let e1 = pm.run_energy_j(1_000_000, 1_000_000, AddressingMode::Local, 1.0);
        let e2 = pm.run_energy_j(2_000_000, 2_000_000, AddressingMode::Local, 1.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        // Global references cost more.
        let eg = pm.run_energy_j(1_000_000, 1_000_000, AddressingMode::Global, 1.0);
        assert!(eg > e1);
    }

    #[test]
    fn throughput_per_watt_uses_system_power() {
        let pm = PowerModel::default();
        let eff = pm.throughput_per_watt(864.0);
        assert!((eff - 1000.35).abs() < 1.0);
        assert!((PowerModel::cpu_throughput_per_watt(80.0) - 1.0).abs() < 1e-9);
    }
}

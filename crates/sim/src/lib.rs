//! # udp-sim — cycle-accurate simulator of the UDP accelerator
//!
//! The paper evaluates the UDP with "a cycle-accurate UDP simulator written
//! in C++ ... using speed (1 GHz) and power (864 milliwatts) derived from
//! the UDP implementation" (§4.4). This crate is that simulator, in Rust:
//!
//! * [`Lane`] interprets one UDP lane: multi-way dispatch with the
//!   fallback signature check, variable-size symbols with refill,
//!   flagged (register-source) dispatch, and the full action set.
//! * [`Udp`] models the 64-lane device: program loading at per-lane
//!   window origins, data-parallel execution, restricted/global/local
//!   addressing, and bank-conflict stall accounting.
//! * [`energy`] holds the power/area model seeded with the paper's
//!   Table 3 constants and a CACTI-lite memory-energy model.
//!
//! Timing model (1 GHz): dispatch = 1 cycle (bank read folded in, as in
//! the 0.97 ns timing closure of §6); fallback miss = +1 cycle; each
//! action = 1 cycle except the loop actions (`1 + ceil(n/8)`, modeling an
//! 8-byte/cycle datapath) and `BumpW` (2 cycles, read-modify-write).
//!
//! ## Example
//!
//! ```
//! use udp_asm::{ProgramBuilder, Target, LayoutOptions};
//! use udp_isa::action::{Action, Opcode};
//! use udp_isa::Reg;
//! use udp_sim::{Lane, LaneConfig};
//!
//! // Count 'a' bytes: emit one output byte per match.
//! let mut b = ProgramBuilder::new();
//! let s = b.add_consuming_state();
//! b.set_entry(s);
//! b.labeled_arc(s, b'a' as u16, Target::State(s),
//!     vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, b'!' as u16)]);
//! b.fallback_arc(s, Target::State(s), vec![]);
//! let image = b.assemble(&LayoutOptions::default())?;
//!
//! let report = Lane::run_program(&image, b"banana", &LaneConfig::default());
//! assert_eq!(report.output, b"!!!");
//! # Ok::<(), udp_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-free degradation discipline (DESIGN.md §8): corrupt state must
// surface as a typed error or LaneStatus::Fault, never a host abort.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod compiled;
pub mod energy;
pub mod engine;
pub mod error;
pub mod lane;
pub mod memory;
mod pool;
pub mod stream;
pub mod supervisor;

pub use energy::{AreaModel, PowerModel, CPU_TDP_WATTS, UDP_SYSTEM_WATTS};
pub use engine::{ExecBackend, ParseBackendError, Staging, Udp, UdpRunOptions, UdpRunReport};
pub use error::{FaultKind, SimError};
pub use lane::{Lane, LaneConfig, LaneReport, LaneStatus};
pub use memory::LocalMemory;
pub use stream::{BitStream, OutputSink};
pub use supervisor::{
    ChunkOutcome, QuarantineReason, ReferenceFallback, RunHealth, SupervisorOptions,
};

/// Why the tier-2 compiled backend would decline to specialize `image`,
/// as a stable snake-case reason string — `None` when it compiles.
///
/// Diagnostic-only: re-runs the compile pipeline from scratch (the
/// engine keeps its own compiled program), so call it off the hot path.
/// Benches surface it as the `compiled_declined` column in
/// `hostperf --json`, recording *why* a kernel ran at interpreter
/// parity instead of leaving a silent gap in the trajectory.
pub fn compiled_decline_reason(image: &udp_asm::ProgramImage) -> Option<&'static str> {
    compiled::decline_reason(image)
}

//! The stream buffer and output sink.
//!
//! Each lane owns a stream buffer with "automatic indexing management and
//! stream prefetching logic" (paper §3.1). Streams are constructed from
//! vector registers by the host; the simulator models the fully-staged
//! window: bit-granular MSB-first reads of 1–8 or 32 bits, put-back for
//! refill transitions, and random access (`PeekAt`) into the staged
//! window for compression history.

/// A bit-granular input stream over a byte buffer.
///
/// Reads are MSB-first within each byte, matching the transition-word
/// symbol numbering: reading 3 bits of `0b1010_0000` yields `0b101`.
#[derive(Debug, Clone)]
pub struct BitStream<'a> {
    data: &'a [u8],
    /// Cursor in bits from the start of `data`.
    pos_bits: u64,
    /// Use the bit-at-a-time reference extraction (see
    /// [`BitStream::reference`]).
    reference: bool,
}

impl<'a> BitStream<'a> {
    /// Wraps a staged byte window.
    pub fn new(data: &'a [u8]) -> Self {
        BitStream {
            data,
            pos_bits: 0,
            reference: false,
        }
    }

    /// Like [`BitStream::new`], but reads extract one bit per loop
    /// iteration instead of using the windowed fast path. The two are
    /// value-identical (property-tested); this form is kept as the
    /// executable specification and as the pre-optimization baseline
    /// for the `hostperf` harness.
    pub fn reference(data: &'a [u8]) -> Self {
        BitStream {
            data,
            pos_bits: 0,
            reference: true,
        }
    }

    /// Total length in bits.
    pub fn len_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Bits left to read.
    pub fn remaining_bits(&self) -> u64 {
        self.len_bits().saturating_sub(self.pos_bits)
    }

    /// True when no bits remain.
    pub fn at_end(&self) -> bool {
        self.remaining_bits() == 0
    }

    /// Current cursor in whole bytes (the value of register R15).
    pub fn byte_index(&self) -> u32 {
        (self.pos_bits / 8) as u32
    }

    /// Current cursor in bits.
    pub fn bit_index(&self) -> u64 {
        self.pos_bits
    }

    /// Reads `bits` (1–32) MSB-first. Returns `None` if the stream is
    /// short; the cursor is unchanged in that case.
    #[inline]
    pub fn read(&mut self, bits: u8) -> Option<u32> {
        // Byte-aligned whole-byte reads dominate (8-bit symbols); skip
        // the window assembly entirely for them.
        if bits == 8 && self.pos_bits & 7 == 0 && !self.reference {
            let b = *self.data.get((self.pos_bits >> 3) as usize)?;
            self.pos_bits += 8;
            return Some(u32::from(b));
        }
        let v = self.peek(bits)?;
        self.pos_bits += u64::from(bits);
        Some(v)
    }

    /// Reads `bits` without consuming.
    pub fn peek(&self, bits: u8) -> Option<u32> {
        debug_assert!((1..=32).contains(&bits));
        if self.remaining_bits() < u64::from(bits) {
            return None;
        }
        if self.reference {
            return Some(self.peek_reference(bits));
        }
        // Gather the covering bytes (≤ 5 for a misaligned 32-bit read)
        // into one window and extract in a single shift.
        let first = (self.pos_bits / 8) as usize;
        let shift = (self.pos_bits % 8) as u32;
        let span = (shift as usize + bits as usize).div_ceil(8);
        let mut window: u64 = 0;
        for &b in &self.data[first..first + span] {
            window = (window << 8) | u64::from(b);
        }
        let v = window >> (span as u32 * 8 - shift - u32::from(bits));
        Some((v & ((1u64 << bits) - 1)) as u32)
    }

    /// One bit per iteration — the executable specification of
    /// MSB-first extraction. Caller has checked the length.
    fn peek_reference(&self, bits: u8) -> u32 {
        let mut v: u32 = 0;
        for p in self.pos_bits..self.pos_bits + u64::from(bits) {
            let byte = self.data[(p / 8) as usize];
            let bit = (byte >> (7 - (p % 8))) & 1;
            v = (v << 1) | u32::from(bit);
        }
        v
    }

    /// Puts `bits` back (refill transition / `RefillI`).
    ///
    /// # Panics
    ///
    /// Panics if more bits are put back than were consumed.
    pub fn putback(&mut self, bits: u8) {
        assert!(
            u64::from(bits) <= self.pos_bits,
            "refill of {bits} bits underflows the stream"
        );
        self.pos_bits -= u64::from(bits);
    }

    /// Advances the cursor by whole bytes (aligning to a byte boundary
    /// first, as the byte-oriented actions do).
    pub fn skip_bytes(&mut self, n: u32) {
        self.align_byte();
        self.pos_bits = (self.pos_bits + u64::from(n) * 8).min(self.len_bits());
    }

    /// Rounds the cursor up to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos_bits = (self.pos_bits + 7) & !7;
    }

    /// Random access into the staged window (`PeekAt`): byte at absolute
    /// offset `idx`, or 0 past the end.
    pub fn byte_at(&self, idx: u32) -> u8 {
        self.data.get(idx as usize).copied().unwrap_or(0)
    }

    /// Bulk [`BitStream::byte_at`]: appends `len` window bytes starting
    /// at `idx` to `dst`, zero-filled past the end — the `LoopIn`
    /// literal-copy fast path.
    pub fn extend_bytes_into(&self, idx: u32, len: usize, dst: &mut Vec<u8>) {
        if idx as u64 + len as u64 > u64::from(u32::MAX) + 1 {
            // Address wrap: byte-at-a-time with wrapping offsets.
            for i in 0..len {
                dst.push(self.byte_at(idx.wrapping_add(i as u32)));
            }
            return;
        }
        let start = (idx as usize).min(self.data.len());
        let end = (idx as usize + len).min(self.data.len());
        dst.reserve(len);
        dst.extend_from_slice(&self.data[start..end]);
        dst.resize(dst.len() + (len - (end - start)), 0);
    }

    /// Reads one aligned byte, or `None` at end.
    pub fn read_byte(&mut self) -> Option<u8> {
        self.align_byte();
        let v = self.data.get((self.pos_bits / 8) as usize).copied()?;
        self.pos_bits += 8;
        Some(v)
    }

    /// The staged window.
    pub fn data(&self) -> &'a [u8] {
        self.data
    }
}

/// The lane output stream: byte-oriented with a bit-packing head for
/// `EmitBits`, and history access for decompression back-copies.
#[derive(Debug, Clone, Default)]
pub struct OutputSink {
    bytes: Vec<u8>,
    /// Pending sub-byte bits (MSB-first), `< 8` of them.
    bit_acc: u16,
    bit_count: u8,
    /// Use the bit-at-a-time reference packing (see
    /// [`OutputSink::reference`]).
    reference: bool,
}

impl OutputSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink with room for `bytes` output bytes, so steady
    /// emission does not regrow the buffer mid-run.
    pub fn with_capacity(bytes: usize) -> Self {
        OutputSink {
            bytes: Vec::with_capacity(bytes),
            ..Self::default()
        }
    }

    /// An empty sink whose bit packing runs one bit per iteration — the
    /// executable specification, value-identical to the default bulk
    /// path (property-tested) and the pre-optimization baseline for the
    /// `hostperf` harness.
    pub fn reference() -> Self {
        OutputSink {
            reference: true,
            ..Self::default()
        }
    }

    /// Appends one byte (flushes any pending bits first, zero-padded).
    #[inline]
    pub fn push_byte(&mut self, b: u8) {
        if self.bit_count > 0 {
            self.flush_bits();
        }
        self.bytes.push(b);
    }

    /// Appends a byte slice in one step — byte-for-byte what repeated
    /// [`OutputSink::push_byte`] would produce (pending bits are
    /// flushed first; an empty slice is a no-op, flushing nothing).
    #[inline]
    pub fn push_bytes(&mut self, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        if self.bit_count > 0 {
            self.flush_bits();
        }
        self.bytes.extend_from_slice(data);
    }

    /// Appends bytes produced directly into the output buffer by
    /// `fill` (pending bits are flushed first) — the zero-copy bulk
    /// twin of [`OutputSink::push_byte`] for memory- and stream-sourced
    /// block copies (`LoopOut`, `LoopIn`).
    #[inline]
    pub fn push_bytes_with<F: FnOnce(&mut Vec<u8>)>(&mut self, fill: F) {
        if self.bit_count > 0 {
            self.flush_bits();
        }
        fill(&mut self.bytes);
    }

    /// Appends the low `bits` of `v`, MSB-first.
    #[inline]
    pub fn push_bits(&mut self, v: u32, bits: u8) {
        debug_assert!(bits <= 16);
        if self.reference {
            return self.push_bits_reference(v, bits);
        }
        // At most 7 pending + 16 new = 23 bits: accumulate in one word
        // and drain whole bytes.
        let mut acc = (u32::from(self.bit_acc) << bits) | (v & ((1u32 << bits) - 1));
        let mut count = u32::from(self.bit_count) + u32::from(bits);
        while count >= 8 {
            count -= 8;
            self.bytes.push((acc >> count) as u8);
        }
        acc &= (1u32 << count) - 1;
        self.bit_acc = acc as u16;
        self.bit_count = count as u8;
    }

    /// One bit per iteration — the executable specification of MSB-first
    /// packing.
    fn push_bits_reference(&mut self, v: u32, bits: u8) {
        for i in (0..bits).rev() {
            let bit = ((v >> i) & 1) as u16;
            self.bit_acc = (self.bit_acc << 1) | bit;
            self.bit_count += 1;
            if self.bit_count == 8 {
                self.bytes.push((self.bit_acc & 0xFF) as u8);
                self.bit_acc = 0;
                self.bit_count = 0;
            }
        }
    }

    /// Zero-pads and flushes any pending bits to a whole byte.
    pub fn flush_bits(&mut self) {
        if self.bit_count > 0 {
            let b = (self.bit_acc << (8 - self.bit_count)) as u8;
            self.bytes.push(b);
            self.bit_acc = 0;
            self.bit_count = 0;
        }
    }

    /// Bytes emitted so far (pending bits not included).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty() && self.bit_count == 0
    }

    /// Copies `n` bytes starting `back` bytes before the cursor onto the
    /// end, replicating on overlap (the LZ decompression primitive).
    ///
    /// # Panics
    ///
    /// Panics if `back` is zero or exceeds the emitted length.
    pub fn copy_back(&mut self, back: u32, n: u32) {
        self.flush_bits();
        let back = back as usize;
        assert!(
            back >= 1 && back <= self.bytes.len(),
            "back-copy distance {back} out of range (len {})",
            self.bytes.len()
        );
        let start = self.bytes.len() - back;
        if self.reference {
            // One byte per iteration — the executable specification of
            // the replicating back-copy.
            for i in 0..n as usize {
                let b = self.bytes[start + i];
                self.bytes.push(b);
            }
            return;
        }
        // Bulk path: copy in chunks that double as the replicated
        // region grows — `extend_from_within` keeps it a memcpy even
        // when `back < n` (overlapping LZ replication).
        let mut remaining = n as usize;
        self.bytes.reserve(remaining);
        while remaining > 0 {
            let avail = self.bytes.len() - start;
            let chunk = remaining.min(avail);
            self.bytes.extend_from_within(start..start + chunk);
            remaining -= chunk;
        }
    }

    /// Finishes the sink, returning the bytes (pending bits flushed).
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.flush_bits();
        self.bytes
    }

    /// Takes the emitted bytes out of the sink (pending bits flushed),
    /// leaving it empty and ready for reuse. Unlike
    /// [`OutputSink::into_bytes`] the sink object — and its packing
    /// mode — survives, so a pooled worker can keep one sink across
    /// chunks.
    pub fn take_bytes(&mut self) -> Vec<u8> {
        self.flush_bits();
        std::mem::take(&mut self.bytes)
    }

    /// Clears the sink for reuse: drops emitted bytes and pending bits
    /// but keeps the allocation and packing mode.
    pub fn reset(&mut self) {
        self.bytes.clear();
        self.bit_acc = 0;
        self.bit_count = 0;
    }

    /// Reserves room for at least `n` more output bytes.
    pub fn reserve(&mut self, n: usize) {
        self.bytes.reserve(n);
    }

    /// The bytes emitted so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn msb_first_reads() {
        let mut s = BitStream::new(&[0b1010_1100, 0b0101_0011]);
        assert_eq!(s.read(3), Some(0b101));
        assert_eq!(s.read(5), Some(0b01100));
        assert_eq!(s.byte_index(), 1);
        assert_eq!(s.read(8), Some(0b0101_0011));
        assert_eq!(s.read(1), None);
    }

    #[test]
    fn putback_rewinds() {
        let mut s = BitStream::new(&[0xFF, 0x00]);
        assert_eq!(s.read(6), Some(0b111111));
        s.putback(4);
        assert_eq!(s.read(4), Some(0b1111));
    }

    #[test]
    #[should_panic(expected = "underflows")]
    fn putback_underflow_panics() {
        let mut s = BitStream::new(&[0xFF]);
        s.read(2);
        s.putback(3);
    }

    #[test]
    fn skip_and_align() {
        let mut s = BitStream::new(&[1, 2, 3, 4]);
        s.read(3);
        s.skip_bytes(1); // aligns to byte 1, then skips to byte 2
        assert_eq!(s.read_byte(), Some(3));
    }

    #[test]
    fn peek_at_is_random_access() {
        let s = BitStream::new(b"hello");
        assert_eq!(s.byte_at(1), b'e');
        assert_eq!(s.byte_at(99), 0);
    }

    #[test]
    fn sink_bit_packing() {
        let mut o = OutputSink::new();
        o.push_bits(0b101, 3);
        o.push_bits(0b01100, 5);
        assert_eq!(o.bytes(), &[0b1010_1100]);
        o.push_bits(0b1, 1);
        let v = o.into_bytes();
        assert_eq!(v, vec![0b1010_1100, 0b1000_0000]);
    }

    #[test]
    fn sink_copy_back_replicates() {
        let mut o = OutputSink::new();
        o.push_byte(b'a');
        o.push_byte(b'b');
        o.copy_back(2, 5);
        assert_eq!(o.bytes(), b"ababababa".get(..7).unwrap());
    }

    /// Builds a bulk-path and a reference-path sink holding the same
    /// `seed` bytes, applies the same back-copy to both, and returns
    /// the pair of results.
    fn copy_back_pair(seed: &[u8], back: u32, n: u32) -> (Vec<u8>, Vec<u8>) {
        let mut fast = OutputSink::new();
        let mut slow = OutputSink::reference();
        fast.push_bytes(seed);
        for &b in seed {
            slow.push_byte(b);
        }
        fast.copy_back(back, n);
        slow.copy_back(back, n);
        (fast.into_bytes(), slow.into_bytes())
    }

    #[test]
    fn sink_copy_back_bulk_matches_reference_overlap_extremes() {
        // back=1: maximal overlap — every copied byte re-reads the byte
        // the previous iteration wrote (run-length replication).
        let (fast, slow) = copy_back_pair(b"xyz", 1, 9);
        assert_eq!(fast, slow);
        assert_eq!(fast, b"xyzzzzzzzzzz");
        // back = n-1: one byte of self-overlap at the very end.
        let n = 7u32;
        let (fast, slow) = copy_back_pair(b"abcdefgh", n - 1, n);
        assert_eq!(fast, slow);
        // back = n: touching but not overlapping.
        let (fast, slow) = copy_back_pair(b"abcdefgh", n, n);
        assert_eq!(fast, slow);
        // Pending bits are flushed identically before the copy.
        let mut fast = OutputSink::new();
        let mut slow = OutputSink::reference();
        for o in [&mut fast, &mut slow] {
            o.push_byte(0xAB);
            o.push_bits(0b101, 3);
            o.copy_back(2, 5);
        }
        assert_eq!(fast.into_bytes(), slow.into_bytes());
    }

    proptest! {
        #[test]
        fn prop_bits_round_trip_through_sink(chunks in proptest::collection::vec((0u32..65536, 1u8..=16), 0..64)) {
            // Writing bits then reading them back yields the same values.
            let mut o = OutputSink::new();
            let mut total_bits = 0u64;
            for (v, w) in &chunks {
                o.push_bits(v & ((1u32 << w) - 1), *w);
                total_bits += u64::from(*w);
            }
            let bytes = o.into_bytes();
            prop_assert_eq!(bytes.len() as u64, total_bits.div_ceil(8));
            let mut s = BitStream::new(&bytes);
            for (v, w) in &chunks {
                prop_assert_eq!(s.read(*w), Some(v & ((1u32 << w) - 1)));
            }
        }

        #[test]
        fn prop_fast_stream_matches_reference(
            data in proptest::collection::vec(any::<u8>(), 1..64),
            widths in proptest::collection::vec(1u8..=32, 1..64),
        ) {
            // The windowed fast path and the bit-at-a-time reference
            // must agree read-for-read, including the None at the end.
            let mut fast = BitStream::new(&data);
            let mut slow = BitStream::reference(&data);
            for w in widths {
                prop_assert_eq!(fast.read(w), slow.read(w));
                prop_assert_eq!(fast.bit_index(), slow.bit_index());
            }
        }

        #[test]
        fn prop_fast_sink_matches_reference(chunks in proptest::collection::vec((any::<u32>(), 1u8..=16), 0..64)) {
            let mut fast = OutputSink::new();
            let mut slow = OutputSink::reference();
            for (v, w) in &chunks {
                fast.push_bits(*v, *w);
                slow.push_bits(*v, *w);
            }
            prop_assert_eq!(fast.into_bytes(), slow.into_bytes());
        }

        #[test]
        fn prop_copy_back_bulk_matches_reference(
            seed in proptest::collection::vec(any::<u8>(), 1..48),
            back in 1u32..48,
            n in 0u32..160,
        ) {
            let back = back.min(seed.len() as u32);
            let (fast, slow) = copy_back_pair(&seed, back, n);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_stream_read_matches_manual_extraction(data in proptest::collection::vec(any::<u8>(), 1..32), width in 1u8..=8) {
            let mut s = BitStream::new(&data);
            let mut pos = 0u64;
            while s.remaining_bits() >= u64::from(width) {
                let got = s.read(width).unwrap();
                let mut expect = 0u32;
                for i in 0..width {
                    let p = pos + u64::from(i);
                    let bit = (data[(p / 8) as usize] >> (7 - (p % 8))) & 1;
                    expect = (expect << 1) | u32::from(bit);
                }
                prop_assert_eq!(got, expect);
                pos += u64::from(width);
            }
        }
    }
}

//! The stream buffer and output sink.
//!
//! Each lane owns a stream buffer with "automatic indexing management and
//! stream prefetching logic" (paper §3.1). Streams are constructed from
//! vector registers by the host; the simulator models the fully-staged
//! window: bit-granular MSB-first reads of 1–8 or 32 bits, put-back for
//! refill transitions, and random access (`PeekAt`) into the staged
//! window for compression history.

/// Reads `bits` (1–32) MSB-first at absolute bit offset `pos` straight
/// from a byte slice. The caller guarantees `pos + bits` is in range.
/// One branchless `u64::from_be_bytes` load covers any such read when
/// ≥ 8 bytes remain past the cursor byte (shift ≤ 7 plus bits ≤ 32
/// always fit the loaded word); near the end of the window it falls
/// back to gathering just the covering bytes. Shared by
/// [`BitStream::peek`] and the compiled backend's bit-burst loop.
#[inline]
pub(crate) fn extract_bits(data: &[u8], pos: u64, bits: u8) -> u32 {
    debug_assert!((1..=32).contains(&bits));
    debug_assert!(pos + u64::from(bits) <= data.len() as u64 * 8);
    let first = (pos >> 3) as usize;
    let shift = (pos & 7) as u32;
    if let Some(s) = data.get(first..first + 8) {
        let w = u64::from_be_bytes(s.try_into().unwrap_or([0; 8]));
        return ((w << shift) >> (64 - u32::from(bits))) as u32;
    }
    // Tail: fewer than 8 bytes remain — gather the ≤ 5 covering bytes.
    let span = (shift as usize + bits as usize).div_ceil(8);
    let mut window: u64 = 0;
    for &b in &data[first..first + span] {
        window = (window << 8) | u64::from(b);
    }
    let v = window >> (span as u32 * 8 - shift - u32::from(bits));
    (v & ((1u64 << bits) - 1)) as u32
}

/// A bit-granular input stream over a byte buffer.
///
/// Reads are MSB-first within each byte, matching the transition-word
/// symbol numbering: reading 3 bits of `0b1010_0000` yields `0b101`.
#[derive(Debug, Clone)]
pub struct BitStream<'a> {
    data: &'a [u8],
    /// Cursor in bits from the start of `data`.
    pos_bits: u64,
    /// Cached 64-bit lookahead window: the big-endian word loaded from
    /// bit offset `win_base` (always byte-aligned). Valid iff
    /// `win_len == 64`; a cursor move (putback, skip, deferred sync)
    /// needs no invalidation because every read revalidates the offset
    /// range `[win_base, win_base + win_len]` first.
    win: u64,
    win_base: u64,
    win_len: u8,
    /// Use the bit-at-a-time reference extraction (see
    /// [`BitStream::reference`]).
    reference: bool,
}

impl<'a> BitStream<'a> {
    /// Wraps a staged byte window.
    pub fn new(data: &'a [u8]) -> Self {
        BitStream {
            data,
            pos_bits: 0,
            win: 0,
            win_base: 0,
            win_len: 0,
            reference: false,
        }
    }

    /// Like [`BitStream::new`], but reads extract one bit per loop
    /// iteration instead of using the windowed fast path. The two are
    /// value-identical (property-tested); this form is kept as the
    /// executable specification and as the pre-optimization baseline
    /// for the `hostperf` harness.
    pub fn reference(data: &'a [u8]) -> Self {
        BitStream {
            data,
            pos_bits: 0,
            win: 0,
            win_base: 0,
            win_len: 0,
            reference: true,
        }
    }

    /// Total length in bits.
    pub fn len_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Bits left to read.
    pub fn remaining_bits(&self) -> u64 {
        self.len_bits().saturating_sub(self.pos_bits)
    }

    /// True when no bits remain.
    pub fn at_end(&self) -> bool {
        self.remaining_bits() == 0
    }

    /// Current cursor in whole bytes (the value of register R15).
    pub fn byte_index(&self) -> u32 {
        (self.pos_bits / 8) as u32
    }

    /// Current cursor in bits.
    pub fn bit_index(&self) -> u64 {
        self.pos_bits
    }

    /// Moves the cursor to an absolute bit offset — the compiled
    /// backend's deferred-sync hook after a bit-burst. The cached
    /// window revalidates itself on the next read, so no invalidation
    /// is needed here.
    pub(crate) fn set_bit_index(&mut self, pos: u64) {
        debug_assert!(pos <= self.len_bits());
        self.pos_bits = pos;
    }

    /// Reads `bits` (1–32) MSB-first. Returns `None` if the stream is
    /// short; the cursor is unchanged in that case.
    #[inline]
    pub fn read(&mut self, bits: u8) -> Option<u32> {
        if self.reference {
            let v = self.peek(bits)?;
            self.pos_bits += u64::from(bits);
            return Some(v);
        }
        debug_assert!((1..=32).contains(&bits));
        // Cached-window fast path: constant shift/mask when the 64-bit
        // lookahead word covers the read. The offset check also rejects
        // an invalid window (`win_len == 0`) and a cursor rewound below
        // `win_base` (the subtraction wraps to a huge offset).
        let off = self.pos_bits.wrapping_sub(self.win_base);
        if self.win_len >= bits && off <= u64::from(self.win_len - bits) {
            let v = ((self.win << off) >> (64 - u32::from(bits))) as u32;
            self.pos_bits += u64::from(bits);
            return Some(v);
        }
        self.refill_read(bits)
    }

    /// Window-miss half of [`BitStream::read`]: reloads the lookahead
    /// word at the cursor byte via `u64::from_be_bytes` when ≥ 8 bytes
    /// remain, else serves the read from the tail-gather path.
    fn refill_read(&mut self, bits: u8) -> Option<u32> {
        if self.remaining_bits() < u64::from(bits) {
            return None;
        }
        let first = (self.pos_bits >> 3) as usize;
        if let Some(s) = self.data.get(first..first + 8) {
            self.win = u64::from_be_bytes(s.try_into().unwrap_or([0; 8]));
            self.win_base = first as u64 * 8;
            self.win_len = 64;
            let off = self.pos_bits - self.win_base; // < 8
            let v = ((self.win << off) >> (64 - u32::from(bits))) as u32;
            self.pos_bits += u64::from(bits);
            return Some(v);
        }
        let v = extract_bits(self.data, self.pos_bits, bits);
        self.pos_bits += u64::from(bits);
        Some(v)
    }

    /// Reads `bits` without consuming.
    pub fn peek(&self, bits: u8) -> Option<u32> {
        debug_assert!((1..=32).contains(&bits));
        if self.remaining_bits() < u64::from(bits) {
            return None;
        }
        if self.reference {
            return Some(self.peek_reference(bits));
        }
        let off = self.pos_bits.wrapping_sub(self.win_base);
        if self.win_len >= bits && off <= u64::from(self.win_len - bits) {
            return Some(((self.win << off) >> (64 - u32::from(bits))) as u32);
        }
        Some(extract_bits(self.data, self.pos_bits, bits))
    }

    /// One bit per iteration — the executable specification of
    /// MSB-first extraction. Caller has checked the length.
    fn peek_reference(&self, bits: u8) -> u32 {
        let mut v: u32 = 0;
        for p in self.pos_bits..self.pos_bits + u64::from(bits) {
            let byte = self.data[(p / 8) as usize];
            let bit = (byte >> (7 - (p % 8))) & 1;
            v = (v << 1) | u32::from(bit);
        }
        v
    }

    /// Puts `bits` back (refill transition / `RefillI`).
    ///
    /// # Panics
    ///
    /// Panics if more bits are put back than were consumed.
    pub fn putback(&mut self, bits: u8) {
        assert!(
            u64::from(bits) <= self.pos_bits,
            "refill of {bits} bits underflows the stream"
        );
        self.pos_bits -= u64::from(bits);
    }

    /// Advances the cursor by whole bytes (aligning to a byte boundary
    /// first, as the byte-oriented actions do).
    pub fn skip_bytes(&mut self, n: u32) {
        self.align_byte();
        self.pos_bits = (self.pos_bits + u64::from(n) * 8).min(self.len_bits());
    }

    /// Rounds the cursor up to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos_bits = (self.pos_bits + 7) & !7;
    }

    /// Random access into the staged window (`PeekAt`): byte at absolute
    /// offset `idx`, or 0 past the end.
    pub fn byte_at(&self, idx: u32) -> u8 {
        self.data.get(idx as usize).copied().unwrap_or(0)
    }

    /// Bulk [`BitStream::byte_at`]: appends `len` window bytes starting
    /// at `idx` to `dst`, zero-filled past the end — the `LoopIn`
    /// literal-copy fast path.
    pub fn extend_bytes_into(&self, idx: u32, len: usize, dst: &mut Vec<u8>) {
        if idx as u64 + len as u64 > u64::from(u32::MAX) + 1 {
            // Address wrap: byte-at-a-time with wrapping offsets.
            for i in 0..len {
                dst.push(self.byte_at(idx.wrapping_add(i as u32)));
            }
            return;
        }
        let start = (idx as usize).min(self.data.len());
        let end = (idx as usize + len).min(self.data.len());
        dst.reserve(len);
        dst.extend_from_slice(&self.data[start..end]);
        dst.resize(dst.len() + (len - (end - start)), 0);
    }

    /// Reads one aligned byte, or `None` at end.
    pub fn read_byte(&mut self) -> Option<u8> {
        self.align_byte();
        let v = self.data.get((self.pos_bits / 8) as usize).copied()?;
        self.pos_bits += 8;
        Some(v)
    }

    /// The staged window.
    pub fn data(&self) -> &'a [u8] {
        self.data
    }
}

/// The lane output stream: byte-oriented with a bit-packing head for
/// `EmitBits`, and history access for decompression back-copies.
#[derive(Debug, Clone, Default)]
pub struct OutputSink {
    bytes: Vec<u8>,
    /// Pending sub-byte bits (MSB-first), `< 8` of them.
    bit_acc: u16,
    bit_count: u8,
    /// Use the bit-at-a-time reference packing (see
    /// [`OutputSink::reference`]).
    reference: bool,
}

impl OutputSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink with room for `bytes` output bytes, so steady
    /// emission does not regrow the buffer mid-run.
    pub fn with_capacity(bytes: usize) -> Self {
        OutputSink {
            bytes: Vec::with_capacity(bytes),
            ..Self::default()
        }
    }

    /// An empty sink whose bit packing runs one bit per iteration — the
    /// executable specification, value-identical to the default bulk
    /// path (property-tested) and the pre-optimization baseline for the
    /// `hostperf` harness.
    pub fn reference() -> Self {
        OutputSink {
            reference: true,
            ..Self::default()
        }
    }

    /// Appends one byte (flushes any pending bits first, zero-padded).
    #[inline]
    pub fn push_byte(&mut self, b: u8) {
        if self.bit_count > 0 {
            self.flush_bits();
        }
        self.bytes.push(b);
    }

    /// Appends a byte slice in one step — byte-for-byte what repeated
    /// [`OutputSink::push_byte`] would produce (pending bits are
    /// flushed first; an empty slice is a no-op, flushing nothing).
    #[inline]
    pub fn push_bytes(&mut self, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        if self.bit_count > 0 {
            self.flush_bits();
        }
        self.bytes.extend_from_slice(data);
    }

    /// Appends bytes produced directly into the output buffer by
    /// `fill` (pending bits are flushed first) — the zero-copy bulk
    /// twin of [`OutputSink::push_byte`] for memory- and stream-sourced
    /// block copies (`LoopOut`, `LoopIn`).
    #[inline]
    pub fn push_bytes_with<F: FnOnce(&mut Vec<u8>)>(&mut self, fill: F) {
        if self.bit_count > 0 {
            self.flush_bits();
        }
        fill(&mut self.bytes);
    }

    /// Appends the low `bits` of `v`, MSB-first.
    #[inline]
    pub fn push_bits(&mut self, v: u32, bits: u8) {
        debug_assert!(bits <= 16);
        if self.reference {
            return self.push_bits_reference(v, bits);
        }
        self.push_bits_wide(u64::from(v & ((1u32 << bits) - 1)), bits);
    }

    /// Appends the low `bits` (≤ 57) of `v`, MSB-first — the word-wide
    /// twin of [`OutputSink::push_bits`]. With ≤ 7 pending bits the
    /// accumulator tops out at exactly 64 bits, so the drain is a
    /// single `to_be_bytes` slice append instead of a byte loop.
    /// `v` must already be masked to `bits`.
    #[inline]
    pub(crate) fn push_bits_wide(&mut self, v: u64, bits: u8) {
        debug_assert!(bits <= 57 && (bits == 0 || v >> bits == 0));
        let acc = (u64::from(self.bit_acc) << bits) | v;
        let count = u32::from(self.bit_count) + u32::from(bits);
        let rem = count & 7;
        let full = ((count - rem) >> 3) as usize;
        self.bytes
            .extend_from_slice(&(acc >> rem).to_be_bytes()[8 - full..]);
        self.bit_acc = (acc & ((1u64 << rem) - 1)) as u16;
        self.bit_count = rem as u8;
    }

    /// Hands the ≤ 7 pending bits `(value, count)` to a compiled
    /// bit-burst loop and clears them here, so the burst can keep the
    /// output accumulator in locals across symbols. Pair with
    /// [`OutputSink::put_pending`] at burst exit.
    pub(crate) fn take_pending(&mut self) -> (u64, u32) {
        let p = (u64::from(self.bit_acc), u32::from(self.bit_count));
        self.bit_acc = 0;
        self.bit_count = 0;
        p
    }

    /// Restores pending bits after a bit-burst (`count < 8`, `acc`
    /// masked to `count` bits).
    pub(crate) fn put_pending(&mut self, acc: u64, count: u32) {
        debug_assert!(count < 8 && acc >> count == 0 && self.bit_count == 0);
        self.bit_acc = acc as u16;
        self.bit_count = count as u8;
    }

    /// Appends the low `n` bytes of `w`, most significant first — the
    /// bit-burst loop's whole-word accumulator drain.
    #[inline]
    pub(crate) fn extend_be_bytes(&mut self, w: u64, n: usize) {
        self.bytes.extend_from_slice(&w.to_be_bytes()[8 - n..]);
    }

    /// One bit per iteration — the executable specification of MSB-first
    /// packing.
    fn push_bits_reference(&mut self, v: u32, bits: u8) {
        for i in (0..bits).rev() {
            let bit = ((v >> i) & 1) as u16;
            self.bit_acc = (self.bit_acc << 1) | bit;
            self.bit_count += 1;
            if self.bit_count == 8 {
                self.bytes.push((self.bit_acc & 0xFF) as u8);
                self.bit_acc = 0;
                self.bit_count = 0;
            }
        }
    }

    /// Zero-pads and flushes any pending bits to a whole byte.
    pub fn flush_bits(&mut self) {
        if self.bit_count > 0 {
            let b = (self.bit_acc << (8 - self.bit_count)) as u8;
            self.bytes.push(b);
            self.bit_acc = 0;
            self.bit_count = 0;
        }
    }

    /// Bytes emitted so far (pending bits not included).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty() && self.bit_count == 0
    }

    /// Copies `n` bytes starting `back` bytes before the cursor onto the
    /// end, replicating on overlap (the LZ decompression primitive).
    ///
    /// # Panics
    ///
    /// Panics if `back` is zero or exceeds the emitted length.
    pub fn copy_back(&mut self, back: u32, n: u32) {
        self.flush_bits();
        let back = back as usize;
        assert!(
            back >= 1 && back <= self.bytes.len(),
            "back-copy distance {back} out of range (len {})",
            self.bytes.len()
        );
        let start = self.bytes.len() - back;
        if self.reference {
            // One byte per iteration — the executable specification of
            // the replicating back-copy.
            for i in 0..n as usize {
                let b = self.bytes[start + i];
                self.bytes.push(b);
            }
            return;
        }
        // Bulk path: copy in chunks that double as the replicated
        // region grows — `extend_from_within` keeps it a memcpy even
        // when `back < n` (overlapping LZ replication).
        let mut remaining = n as usize;
        self.bytes.reserve(remaining);
        while remaining > 0 {
            let avail = self.bytes.len() - start;
            let chunk = remaining.min(avail);
            self.bytes.extend_from_within(start..start + chunk);
            remaining -= chunk;
        }
    }

    /// Finishes the sink, returning the bytes (pending bits flushed).
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.flush_bits();
        self.bytes
    }

    /// Takes the emitted bytes out of the sink (pending bits flushed),
    /// leaving it empty and ready for reuse. Unlike
    /// [`OutputSink::into_bytes`] the sink object — and its packing
    /// mode — survives, so a pooled worker can keep one sink across
    /// chunks.
    pub fn take_bytes(&mut self) -> Vec<u8> {
        self.flush_bits();
        std::mem::take(&mut self.bytes)
    }

    /// Clears the sink for reuse: drops emitted bytes and pending bits
    /// but keeps the allocation and packing mode.
    pub fn reset(&mut self) {
        self.bytes.clear();
        self.bit_acc = 0;
        self.bit_count = 0;
    }

    /// Reserves room for at least `n` more output bytes.
    pub fn reserve(&mut self, n: usize) {
        self.bytes.reserve(n);
    }

    /// The bytes emitted so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn msb_first_reads() {
        let mut s = BitStream::new(&[0b1010_1100, 0b0101_0011]);
        assert_eq!(s.read(3), Some(0b101));
        assert_eq!(s.read(5), Some(0b01100));
        assert_eq!(s.byte_index(), 1);
        assert_eq!(s.read(8), Some(0b0101_0011));
        assert_eq!(s.read(1), None);
    }

    #[test]
    fn putback_rewinds() {
        let mut s = BitStream::new(&[0xFF, 0x00]);
        assert_eq!(s.read(6), Some(0b111111));
        s.putback(4);
        assert_eq!(s.read(4), Some(0b1111));
    }

    #[test]
    #[should_panic(expected = "underflows")]
    fn putback_underflow_panics() {
        let mut s = BitStream::new(&[0xFF]);
        s.read(2);
        s.putback(3);
    }

    #[test]
    fn skip_and_align() {
        let mut s = BitStream::new(&[1, 2, 3, 4]);
        s.read(3);
        s.skip_bytes(1); // aligns to byte 1, then skips to byte 2
        assert_eq!(s.read_byte(), Some(3));
    }

    #[test]
    fn peek_at_is_random_access() {
        let s = BitStream::new(b"hello");
        assert_eq!(s.byte_at(1), b'e');
        assert_eq!(s.byte_at(99), 0);
    }

    #[test]
    fn sink_bit_packing() {
        let mut o = OutputSink::new();
        o.push_bits(0b101, 3);
        o.push_bits(0b01100, 5);
        assert_eq!(o.bytes(), &[0b1010_1100]);
        o.push_bits(0b1, 1);
        let v = o.into_bytes();
        assert_eq!(v, vec![0b1010_1100, 0b1000_0000]);
    }

    #[test]
    fn sink_copy_back_replicates() {
        let mut o = OutputSink::new();
        o.push_byte(b'a');
        o.push_byte(b'b');
        o.copy_back(2, 5);
        assert_eq!(o.bytes(), b"ababababa".get(..7).unwrap());
    }

    /// Builds a bulk-path and a reference-path sink holding the same
    /// `seed` bytes, applies the same back-copy to both, and returns
    /// the pair of results.
    fn copy_back_pair(seed: &[u8], back: u32, n: u32) -> (Vec<u8>, Vec<u8>) {
        let mut fast = OutputSink::new();
        let mut slow = OutputSink::reference();
        fast.push_bytes(seed);
        for &b in seed {
            slow.push_byte(b);
        }
        fast.copy_back(back, n);
        slow.copy_back(back, n);
        (fast.into_bytes(), slow.into_bytes())
    }

    #[test]
    fn sink_copy_back_bulk_matches_reference_overlap_extremes() {
        // back=1: maximal overlap — every copied byte re-reads the byte
        // the previous iteration wrote (run-length replication).
        let (fast, slow) = copy_back_pair(b"xyz", 1, 9);
        assert_eq!(fast, slow);
        assert_eq!(fast, b"xyzzzzzzzzzz");
        // back = n-1: one byte of self-overlap at the very end.
        let n = 7u32;
        let (fast, slow) = copy_back_pair(b"abcdefgh", n - 1, n);
        assert_eq!(fast, slow);
        // back = n: touching but not overlapping.
        let (fast, slow) = copy_back_pair(b"abcdefgh", n, n);
        assert_eq!(fast, slow);
        // Pending bits are flushed identically before the copy.
        let mut fast = OutputSink::new();
        let mut slow = OutputSink::reference();
        for o in [&mut fast, &mut slow] {
            o.push_byte(0xAB);
            o.push_bits(0b101, 3);
            o.copy_back(2, 5);
        }
        assert_eq!(fast.into_bytes(), slow.into_bytes());
    }

    proptest! {
        #[test]
        fn prop_bits_round_trip_through_sink(chunks in proptest::collection::vec((0u32..65536, 1u8..=16), 0..64)) {
            // Writing bits then reading them back yields the same values.
            let mut o = OutputSink::new();
            let mut total_bits = 0u64;
            for (v, w) in &chunks {
                o.push_bits(v & ((1u32 << w) - 1), *w);
                total_bits += u64::from(*w);
            }
            let bytes = o.into_bytes();
            prop_assert_eq!(bytes.len() as u64, total_bits.div_ceil(8));
            let mut s = BitStream::new(&bytes);
            for (v, w) in &chunks {
                prop_assert_eq!(s.read(*w), Some(v & ((1u32 << w) - 1)));
            }
        }

        #[test]
        fn prop_fast_stream_matches_reference(
            data in proptest::collection::vec(any::<u8>(), 1..64),
            widths in proptest::collection::vec(1u8..=32, 1..64),
        ) {
            // The windowed fast path and the bit-at-a-time reference
            // must agree read-for-read, including the None at the end.
            let mut fast = BitStream::new(&data);
            let mut slow = BitStream::reference(&data);
            for w in widths {
                prop_assert_eq!(fast.read(w), slow.read(w));
                prop_assert_eq!(fast.bit_index(), slow.bit_index());
            }
        }

        #[test]
        fn prop_fast_sink_matches_reference(chunks in proptest::collection::vec((any::<u32>(), 1u8..=16), 0..64)) {
            let mut fast = OutputSink::new();
            let mut slow = OutputSink::reference();
            for (v, w) in &chunks {
                fast.push_bits(*v, *w);
                slow.push_bits(*v, *w);
            }
            prop_assert_eq!(fast.into_bytes(), slow.into_bytes());
        }

        #[test]
        fn prop_copy_back_bulk_matches_reference(
            seed in proptest::collection::vec(any::<u8>(), 1..48),
            back in 1u32..48,
            n in 0u32..160,
        ) {
            let back = back.min(seed.len() as u32);
            let (fast, slow) = copy_back_pair(&seed, back, n);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_interleaved_stream_ops_match_reference(
            data in proptest::collection::vec(any::<u8>(), 1..48),
            ops in proptest::collection::vec((0u8..6, 1u8..=32, 0u8..16), 1..96),
        ) {
            // Random interleavings of every cursor-moving operation:
            // putback/align/skip rewind or jump the cursor under the
            // cached window, which must revalidate rather than serve
            // stale word bits.
            let mut fast = BitStream::new(&data);
            let mut slow = BitStream::reference(&data);
            for (op, w, n) in ops {
                match op {
                    0 => { prop_assert_eq!(fast.read(w), slow.read(w)); }
                    1 => {
                        let give = u64::from(n).min(fast.bit_index()) as u8;
                        fast.putback(give);
                        slow.putback(give);
                    }
                    2 => { fast.align_byte(); slow.align_byte(); }
                    3 => { fast.skip_bytes(u32::from(n)); slow.skip_bytes(u32::from(n)); }
                    4 => { prop_assert_eq!(fast.read_byte(), slow.read_byte()); }
                    _ => { prop_assert_eq!(fast.peek(w), slow.peek(w)); }
                }
                prop_assert_eq!(fast.bit_index(), slow.bit_index());
            }
        }

        #[test]
        fn prop_push_bits_wide_matches_narrow(
            chunks in proptest::collection::vec((any::<u64>(), 1u8..=57), 0..64),
        ) {
            // One wide append must be byte-for-byte what the same bits
            // split across ≤16-bit reference pushes produce.
            let mut wide = OutputSink::new();
            let mut narrow = OutputSink::reference();
            for (v, w) in &chunks {
                let v = v & ((1u64 << w) - 1);
                wide.push_bits_wide(v, *w);
                let mut left = *w;
                while left > 0 {
                    let take = left.min(16);
                    left -= take;
                    narrow.push_bits(((v >> left) & ((1u64 << take) - 1)) as u32, take);
                }
            }
            prop_assert_eq!(wide.into_bytes(), narrow.into_bytes());
        }

        #[test]
        fn prop_burst_accumulator_matches_push_bits(
            pre in 0u8..8,
            chunks in proptest::collection::vec((any::<u32>(), 1u8..=30, any::<bool>()), 0..48),
        ) {
            // The exact accumulator algebra the compiled bit-burst loop
            // runs — take_pending, local append/pad, extend_be_bytes
            // drain, put_pending — against the plain sink API.
            fn drain(sink: &mut OutputSink, acc: &mut u64, n: &mut u32) {
                if *n >= 8 {
                    let rem = *n & 7;
                    sink.extend_be_bytes(*acc >> rem, ((*n - rem) >> 3) as usize);
                    *acc &= (1u64 << rem) - 1;
                    *n = rem;
                }
            }
            let mut plain = OutputSink::new();
            let mut burst = OutputSink::new();
            if pre > 0 {
                plain.push_bits(0x55 & ((1u32 << pre) - 1), pre);
                burst.push_bits(0x55 & ((1u32 << pre) - 1), pre);
            }
            let (mut acc, mut n) = burst.take_pending();
            for (v, w, as_byte) in &chunks {
                if *as_byte {
                    // EmitB semantics: zero-pad to a byte boundary, then
                    // append the byte.
                    plain.push_byte(*v as u8);
                    let pad = (8 - (n & 7)) & 7;
                    acc <<= pad;
                    n += pad;
                    acc = (acc << 8) | u64::from(*v as u8);
                    n += 8;
                } else {
                    // Fused constant code of up to 30 bits, fed to the
                    // plain sink in the ≤16-bit slices EmitBits uses.
                    let v = v & ((1u32 << w) - 1);
                    if *w > 15 {
                        plain.push_bits(v >> 15, w - 15);
                        plain.push_bits(v & 0x7FFF, 15);
                    } else {
                        plain.push_bits(v, *w);
                    }
                    acc = (acc << w) | u64::from(v);
                    n += u32::from(*w);
                }
                drain(&mut burst, &mut acc, &mut n);
                prop_assert!(n < 8);
            }
            burst.put_pending(acc, n);
            prop_assert_eq!(plain.into_bytes(), burst.into_bytes());
        }

        #[test]
        fn prop_stream_read_matches_manual_extraction(data in proptest::collection::vec(any::<u8>(), 1..32), width in 1u8..=8) {
            let mut s = BitStream::new(&data);
            let mut pos = 0u64;
            while s.remaining_bits() >= u64::from(width) {
                let got = s.read(width).unwrap();
                let mut expect = 0u32;
                for i in 0..width {
                    let p = pos + u64::from(i);
                    let bit = (data[(p / 8) as usize] >> (7 - (p % 8))) & 1;
                    expect = (expect << 1) | u32::from(bit);
                }
                prop_assert_eq!(got, expect);
                pos += u64::from(width);
            }
        }
    }
}

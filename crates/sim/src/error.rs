//! Typed simulator errors — the "report, don't abort" half of the
//! fault model (DESIGN.md §8).
//!
//! Host-visible misconfiguration (a program that cannot fit its lane
//! window, an impossible bank split) surfaces as a [`SimError`] from
//! [`crate::Udp::try_run_data_parallel`]; faults *inside* a running
//! lane surface as [`crate::LaneStatus::Fault`] in that lane's report.
//! Neither path panics the host.

use std::fmt;
use udp_isa::mem::NUM_BANKS;

/// Why a device run could not start (or could not be configured).
///
/// These are pre-flight errors: no lane has executed when one is
/// returned. Runtime faults inside a lane degrade to
/// [`crate::LaneStatus::Fault`] in the per-lane report instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program image spans more words than one lane window holds.
    ProgramTooLarge {
        /// Image span in words (code + attached action blocks).
        span_words: usize,
        /// Window capacity in words at the requested bank split.
        window_words: usize,
        /// Banks per lane the caller asked for.
        banks_per_lane: usize,
    },
    /// `banks_per_lane` must be in `1..=NUM_BANKS`.
    BadBankSplit {
        /// The rejected value.
        banks_per_lane: usize,
    },
    /// The image was assembled size-model-only and cannot execute.
    NotExecutable,
    /// Pre-flight static verification (requested via
    /// [`crate::UdpRunOptions::verify`]) found errors in the image.
    Verify(udp_verify::Report),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ProgramTooLarge {
                span_words,
                window_words,
                banks_per_lane,
            } => write!(
                f,
                "program ({span_words} words) exceeds the {banks_per_lane}-bank \
                 window ({window_words} words)"
            ),
            SimError::BadBankSplit { banks_per_lane } => write!(
                f,
                "banks_per_lane must be in 1..={NUM_BANKS}, got {banks_per_lane}"
            ),
            SimError::NotExecutable => {
                write!(f, "size-model-only image cannot run")
            }
            SimError::Verify(report) => {
                write!(f, "static verification rejected the image: {report}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_limit() {
        let e = SimError::ProgramTooLarge {
            span_words: 9000,
            window_words: 4096,
            banks_per_lane: 1,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("4096"));
        let e = SimError::BadBankSplit { banks_per_lane: 0 };
        assert!(e.to_string().contains("1..=64"));
    }
}

//! Typed simulator errors — the "report, don't abort" half of the
//! fault model (DESIGN.md §8).
//!
//! Host-visible misconfiguration (a program that cannot fit its lane
//! window, an impossible bank split) surfaces as a [`SimError`] from
//! [`crate::Udp::try_run_data_parallel`]; faults *inside* a running
//! lane surface as [`crate::LaneStatus::Fault`] carrying a
//! [`FaultKind`] in that lane's report. Neither path panics the host.

use std::fmt;
use udp_isa::mem::NUM_BANKS;

/// Why a lane faulted mid-run — the typed payload of
/// [`crate::LaneStatus::Fault`].
///
/// Every variant is deterministic for a given (image, staging, input,
/// config) tuple except [`FaultKind::HostPanic`], whose message comes
/// from whatever unwound; the supervisor (DESIGN.md §8) keys its
/// retry/fallback/quarantine ladder and the [`crate::RunHealth`]
/// histogram off these variants, so they must stay structured — no
/// free-form strings except the panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The per-chunk cycle budget was exhausted (the derived
    /// input-proportional budget or the absolute
    /// [`crate::LaneConfig::max_cycles`] cap, whichever was nearer).
    CycleBudget {
        /// The budget that fired, in cycles.
        limit: u64,
    },
    /// A fetched action word failed to decode.
    UndecodableWord {
        /// Flat word address of the fetch.
        addr: u32,
        /// The raw bits that would not decode.
        raw: u32,
    },
    /// A refill asked for more bits than the stream has consumed.
    StreamUnderflow {
        /// Bits the refill tried to put back.
        requested_bits: u8,
        /// Bits actually consumed (and thus available for put-back).
        consumed_bits: u64,
    },
    /// A control/addressing invariant was violated: a bad pass-state
    /// signature, an epsilon fork outside NFA mode, a `LoopBack`
    /// distance outside the produced output, or an illegal dispatch
    /// symbol width.
    Addressing {
        /// Which invariant (static description).
        context: &'static str,
        /// The offending value.
        value: u32,
    },
    /// A loop action or action block exceeded its structural cap.
    LoopOverflow {
        /// Which structure overflowed (static description).
        context: &'static str,
        /// The requested length.
        len: u32,
        /// The cap it exceeded.
        cap: u32,
    },
    /// A host panic unwound out of the chunk and was converted to a
    /// fault by the pool's `catch_unwind` (chaos injection, bugs).
    HostPanic(String),
    /// The fault-injection hook ([`crate::LaneConfig::chaos_fault_at`])
    /// fired — a modeled detected soft error, used by the fault harness
    /// to exercise the recovery ladder without a panic.
    ChaosInjected {
        /// Cycle count when the injected fault fired.
        at_cycle: u64,
    },
}

impl FaultKind {
    /// Stable kebab-case name of the variant (health histograms, JSON).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::CycleBudget { .. } => "cycle-budget",
            FaultKind::UndecodableWord { .. } => "undecodable-word",
            FaultKind::StreamUnderflow { .. } => "stream-underflow",
            FaultKind::Addressing { .. } => "addressing",
            FaultKind::LoopOverflow { .. } => "loop-overflow",
            FaultKind::HostPanic(_) => "host-panic",
            FaultKind::ChaosInjected { .. } => "chaos-injected",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::CycleBudget { limit } => {
                write!(f, "cycle budget of {limit} exhausted")
            }
            FaultKind::UndecodableWord { addr, raw } => {
                write!(f, "undecodable action word {raw:#010x} at {addr:#x}")
            }
            FaultKind::StreamUnderflow {
                requested_bits,
                consumed_bits,
            } => write!(
                f,
                "refill of {requested_bits} bits underflows the stream \
                 ({consumed_bits} consumed)"
            ),
            FaultKind::Addressing { context, value } => {
                write!(f, "addressing violation: {context} ({value:#x})")
            }
            FaultKind::LoopOverflow { context, len, cap } => {
                write!(f, "{context} length {len} exceeds {cap}")
            }
            FaultKind::HostPanic(msg) => write!(f, "lane panicked: {msg}"),
            FaultKind::ChaosInjected { at_cycle } => {
                write!(f, "chaos: injected fault at cycle {at_cycle}")
            }
        }
    }
}

/// Why a device run could not start (or could not be configured).
///
/// These are pre-flight errors: no lane has executed when one is
/// returned. Runtime faults inside a lane degrade to
/// [`crate::LaneStatus::Fault`] in the per-lane report instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program image spans more words than one lane window holds.
    ProgramTooLarge {
        /// Image span in words (code + attached action blocks).
        span_words: usize,
        /// Window capacity in words at the requested bank split.
        window_words: usize,
        /// Banks per lane the caller asked for.
        banks_per_lane: usize,
    },
    /// `banks_per_lane` must be in `1..=NUM_BANKS`.
    BadBankSplit {
        /// The rejected value.
        banks_per_lane: usize,
    },
    /// The image was assembled size-model-only and cannot execute.
    NotExecutable,
    /// The attached [`crate::SupervisorOptions`] are self-contradictory:
    /// the backoff ceiling is below the backoff base, so every capped
    /// value would silently collapse to the cap. Rejected up front
    /// rather than guessed at ([`crate::SupervisorOptions::validate`]).
    SupervisorConfig {
        /// The configured backoff base, milliseconds.
        backoff_base_ms: u64,
        /// The configured (smaller) backoff cap, milliseconds.
        backoff_cap_ms: u64,
    },
    /// Pre-flight static verification (requested via
    /// [`crate::UdpRunOptions::verify`]) found errors in the image.
    /// Boxed: the report carries the resource certificate, which would
    /// otherwise dominate every `Result<_, SimError>`.
    Verify(Box<udp_verify::Report>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ProgramTooLarge {
                span_words,
                window_words,
                banks_per_lane,
            } => write!(
                f,
                "program ({span_words} words) exceeds the {banks_per_lane}-bank \
                 window ({window_words} words)"
            ),
            SimError::BadBankSplit { banks_per_lane } => write!(
                f,
                "banks_per_lane must be in 1..={NUM_BANKS}, got {banks_per_lane}"
            ),
            SimError::NotExecutable => {
                write!(f, "size-model-only image cannot run")
            }
            SimError::SupervisorConfig {
                backoff_base_ms,
                backoff_cap_ms,
            } => write!(
                f,
                "supervisor backoff cap ({backoff_cap_ms} ms) is below its \
                 base ({backoff_base_ms} ms)"
            ),
            SimError::Verify(report) => {
                write!(f, "static verification rejected the image: {report}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_names_are_stable_kebab() {
        let kinds = [
            FaultKind::CycleBudget { limit: 1 },
            FaultKind::UndecodableWord { addr: 0, raw: 0 },
            FaultKind::StreamUnderflow {
                requested_bits: 1,
                consumed_bits: 0,
            },
            FaultKind::Addressing {
                context: "x",
                value: 0,
            },
            FaultKind::LoopOverflow {
                context: "x",
                len: 2,
                cap: 1,
            },
            FaultKind::HostPanic(String::new()),
            FaultKind::ChaosInjected { at_cycle: 0 },
        ];
        for k in &kinds {
            assert!(
                k.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{k:?}"
            );
            assert!(!k.to_string().is_empty());
        }
    }

    #[test]
    fn sim_error_composes_as_box_dyn_error() {
        fn fails() -> Result<(), Box<dyn std::error::Error>> {
            Err(SimError::NotExecutable)?;
            Ok(())
        }
        let e = fails().unwrap_err();
        assert!(e.to_string().contains("size-model-only"));
    }

    #[test]
    fn display_names_the_limit() {
        let e = SimError::ProgramTooLarge {
            span_words: 9000,
            window_words: 4096,
            banks_per_lane: 1,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("4096"));
        let e = SimError::BadBankSplit { banks_per_lane: 0 };
        assert!(e.to_string().contains("1..=64"));
        let e = SimError::SupervisorConfig {
            backoff_base_ms: 8,
            backoff_cap_ms: 2,
        };
        assert!(e.to_string().contains('8') && e.to_string().contains('2'));
    }
}

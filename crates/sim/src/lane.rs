//! The UDP lane interpreter: dispatch unit + stream-prefetch unit +
//! action unit (paper Figure 23), cycle-accurately.

use crate::error::FaultKind;
use crate::memory::LocalMemory;
use crate::stream::{BitStream, OutputSink};
use std::sync::Arc;
use udp_asm::layout::CHAIN_CONTINUE_SIGNATURE;
use udp_asm::{DecodedProgram, ProgramImage};
use udp_isa::action::{Action, Opcode};
use udp_isa::transition::{ExecKind, TransitionWord, FALLBACK_SIGNATURE};
use udp_isa::{Reg, Word};

/// Architectural ceiling on one transition's action-block length; a
/// block still running after this many fetches faults `LoopOverflow`.
pub(crate) const BLOCK_CAP: usize = 4096;

/// Length of the fused emit-span prefix (see [`EmitSpan`]).
pub(crate) const EMIT_SPAN_LEN: usize = 5;

/// A compile-time-recognized `InIdx; Sub; LoopIn; EmitB; InIdx`
/// action-block prefix — the span-emit idiom every field/record
/// boundary of the scanner-style kernels runs (copy the input bytes
/// since the last mark to the output, append a separator, re-mark).
/// Holding the register numbers and immediates lets the lane run the
/// whole prefix as one straight-line routine instead of five decoded
/// `exec` dispatches; every architectural effect (register writes in
/// program order, the `LoopOverflow` length check, cycle/action/read
/// charges) lands exactly as the generic walk's.
///
/// None of the five ops moves the stream cursor or writes memory, so
/// the prefix is always `pure_code` and the input index read by the
/// leading `InIdx` still holds for the trailing one.
#[derive(Debug, Clone)]
pub(crate) struct EmitSpan {
    /// `InIdx` destination (the span-end mark).
    d0: u8,
    /// Sign-extended immediate of the leading `InIdx`.
    off0: u32,
    /// `Sub` destination (the span length).
    d1: u8,
    /// `Sub` reference register (minuend).
    r1: u8,
    /// `Sub` source register (subtrahend).
    s1: u8,
    /// `LoopIn` reference register (input start index).
    r2: u8,
    /// `LoopIn` source register (length).
    s2: u8,
    /// `EmitB` source register.
    s3: u8,
    /// `EmitB` immediate.
    imm3: u32,
    /// Trailing `InIdx` destination (the new mark).
    d4: u8,
    /// Sign-extended immediate of the trailing `InIdx`.
    off4: u32,
}

impl EmitSpan {
    /// Matches the idiom against a cached block's first five actions.
    /// Declines when any consulted register is `R15` (the live input
    /// index) so the fused routine can read the plain register file.
    pub(crate) fn recognize(block: &[Action]) -> Option<EmitSpan> {
        if block.len() < EMIT_SPAN_LEN {
            return None;
        }
        let (a0, a1, a2, a3, a4) = (&block[0], &block[1], &block[2], &block[3], &block[4]);
        let ok = a0.op == Opcode::InIdx
            && a1.op == Opcode::Sub
            && a2.op == Opcode::LoopIn
            && a3.op == Opcode::EmitB
            && a4.op == Opcode::InIdx;
        let regs = [
            a0.dst, a1.dst, a1.rref, a1.src, a2.rref, a2.src, a3.src, a4.dst,
        ];
        if !ok || regs.contains(&Reg::R15) {
            return None;
        }
        let sx = |imm: u16| i32::from(imm as i16) as u32;
        Some(EmitSpan {
            d0: a0.dst.index(),
            off0: sx(a0.imm),
            d1: a1.dst.index(),
            r1: a1.rref.index(),
            s1: a1.src.index(),
            r2: a2.rref.index(),
            s2: a2.src.index(),
            s3: a3.src.index(),
            imm3: u32::from(a3.imm),
            d4: a4.dst.index(),
            off4: sx(a4.imm),
        })
    }

    /// True when any consulted register is `R13` — the dispatch-symbol
    /// latch, which the burst loop defers syncing until segment end, so
    /// an in-burst fused run must not read or clobber it.
    pub(crate) fn touches_r13(&self) -> bool {
        [
            self.d0, self.d1, self.r1, self.s1, self.r2, self.s2, self.s3, self.d4,
        ]
        .contains(&13)
    }
}

/// The predecoded code tables, hoisted out of the `Arc` into plain
/// slices held in locals for the duration of a run — the fetch fast
/// path then costs one bounds check and one load instead of a pointer
/// chase through `Arc` and `Vec` headers that memory writes would keep
/// invalidating.
#[derive(Clone, Copy)]
pub(crate) struct CodeTables<'a> {
    pub(crate) transitions: &'a [(Word, TransitionWord)],
    pub(crate) actions: &'a [(Word, Option<Action>)],
}

impl CodeTables<'static> {
    /// The no-table table: every lookup misses, so fetches take the
    /// plain memory path. Saves an `Option` discriminant check on the
    /// hot path.
    pub(crate) const EMPTY: CodeTables<'static> = CodeTables {
        transitions: &[],
        actions: &[],
    };
}

/// Per-run lane configuration.
#[derive(Debug, Clone)]
pub struct LaneConfig {
    /// Absolute safety cap on simulated cycles. Acts as an override
    /// ceiling on the derived budget (see [`LaneConfig::budget_for`]):
    /// the effective per-chunk budget never exceeds it, so callers that
    /// want the pre-derived behavior of a hard cap just set this low.
    pub max_cycles: u64,
    /// Proportional cycle budget: a chunk of `n` input bytes may spend
    /// at most `cycles_per_byte * n` cycles (floored by
    /// [`LaneConfig::min_cycle_budget`], ceilinged by
    /// [`LaneConfig::max_cycles`]). The constant default of 4096 is
    /// orders of magnitude above any real kernel (the decompressors
    /// peak around tens of cycles per input byte), so legitimate
    /// programs never feel it while a runaway loop on a small chunk
    /// terminates proportionally instead of burning the absolute cap.
    /// When the image carries a verifier resource certificate
    /// (`udp_asm::ResourceCert`), [`LaneConfig::with_cert`] replaces
    /// the constant with a bound derived from the certified worst-case
    /// cycles per byte — usually thousands of times tighter. `0`
    /// disables the proportional budget entirely.
    pub cycles_per_byte: u64,
    /// Floor of the proportional budget, so near-empty chunks still get
    /// enough cycles for staged-table setup and non-consuming programs.
    pub min_cycle_budget: u64,
    /// Fault-injection hook: when set, the lane *panics* the moment its
    /// cycle counter reaches this value. Only the fault harness and the
    /// engine's panic-recovery tests set this — it exists so the
    /// "one poisoned lane must not take down the wave" path can be
    /// exercised deterministically. `None` (the default) costs nothing
    /// on the dispatch hot path: the check is folded into the existing
    /// cycle-cap compare.
    pub chaos_panic_at: Option<u64>,
    /// Fault-injection hook: when set, the lane stops with
    /// [`FaultKind::ChaosInjected`] the moment its cycle counter
    /// reaches this value — a modeled *detected* soft error (vs the
    /// undetected crash `chaos_panic_at` models). Folded into the same
    /// cycle-cap compare; free when `None`.
    pub chaos_fault_at: Option<u64>,
    /// Marks the chaos hooks as transient: the supervisor disarms both
    /// hooks when it replays a faulted chunk, modeling a soft error
    /// that does not recur on retry. With `false` (persistent chaos),
    /// replays re-fault deterministically and recovery must come from
    /// the reference fallback instead.
    pub chaos_transient: bool,
}

impl Default for LaneConfig {
    fn default() -> Self {
        LaneConfig {
            max_cycles: 2_000_000_000,
            cycles_per_byte: 4096,
            min_cycle_budget: 1 << 20,
            chaos_panic_at: None,
            chaos_fault_at: None,
            chaos_transient: false,
        }
    }
}

impl LaneConfig {
    /// The effective cycle budget for a chunk of `input_bytes`:
    /// `min(max_cycles, max(min_cycle_budget, cycles_per_byte * n))`,
    /// or just `max_cycles` when the proportional budget is disabled.
    ///
    /// `cycles_per_byte` and `min_cycle_budget` are *not* necessarily
    /// the constant defaults: a caller holding a certified image
    /// ([`LaneConfig::with_cert`]) derives both from the verifier's
    /// worst-case bounds, and the three-way clamp order matters — the
    /// floor is applied to the proportional term *before* the
    /// `max_cycles` ceiling, so a tiny chunk still cannot exceed the
    /// absolute cap even when a cert inflates the floor.
    pub fn budget_for(&self, input_bytes: usize) -> u64 {
        if self.cycles_per_byte == 0 {
            return self.max_cycles;
        }
        let proportional = self
            .cycles_per_byte
            .saturating_mul(input_bytes as u64)
            .max(self.min_cycle_budget);
        self.max_cycles.min(proportional)
    }

    /// Derives a tightened budget from a complete verifier resource
    /// certificate: the proportional slope becomes twice the certified
    /// worst-case cycles per byte (the factor-2 headroom keeps a sound
    /// but tight certificate from ever stopping a legitimate run), and
    /// the floor grows to cover twice the certificate's additive base.
    /// `max_cycles` is left untouched — it stays the absolute safety
    /// ceiling regardless of what was certified.
    ///
    /// Incomplete certificates (any `unbounded` blocker or a missing
    /// cycle bound) leave the configuration unchanged: an unbounded
    /// program gets the generic constant budget, not an infinite one.
    ///
    /// The certificate models a run from the architectural reset state,
    /// so callers must not apply this to runs with staged register
    /// presets.
    #[must_use]
    pub fn with_cert(&self, cert: &udp_asm::ResourceCert) -> LaneConfig {
        let mut cfg = self.clone();
        if !cert.is_complete() {
            return cfg;
        }
        if let Some(cpb) = cert.max_cycles_per_byte {
            // A certified ratio of 0 (pure-halting programs) still
            // needs a positive slope so budget_for's disable sentinel
            // (0) is never produced by accident.
            cfg.cycles_per_byte = cpb.saturating_mul(2).max(1);
            // Sound replacement for the generic 1 MiB floor: a clean
            // run needs at most `base + cpb*n` cycles, and whenever the
            // proportional term `2*cpb*n` fails to cover that (small
            // `n`, `cpb*n < base + 1024`), this floor does.
            cfg.min_cycle_budget = cert.base_cycles.saturating_mul(2).saturating_add(1024);
        }
        cfg
    }
}

/// Why a lane stopped.
///
/// # Lifecycle
///
/// A lane is born [`LaneStatus::Running`] and stays there for its whole
/// execution; [`Lane::step`] transitions it *at most once* to a
/// terminal variant (anything but `Running`), after which stepping is a
/// no-op contract violation — [`Lane::run`] polls the status after
/// every step and stops on the first terminal value. The status is
/// *moved* (not cloned) into the final [`LaneReport`]; the lane object
/// is left `Running` again but must be considered consumed: its
/// registers, stream position, and cycle counters still hold their
/// final values, so re-running it would double-count. Build a fresh
/// lane per run instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneStatus {
    /// Still runnable (only observable mid-stepping).
    Running,
    /// The stream had too few bits for the next dispatch — the normal end
    /// of a scan.
    InputExhausted,
    /// A `Halt` action or terminal arc stopped the lane with this code.
    Halted(u16),
    /// Dispatch missed and the state had no fallback.
    NoTransition,
    /// The lane faulted: a malformed program, an exhausted cycle
    /// budget, a recovered host panic — see [`FaultKind`] for the
    /// taxonomy. Faulted chunks are what the supervisor's
    /// retry → fallback → quarantine ladder (DESIGN.md §8) operates on.
    Fault(FaultKind),
}

/// Everything a lane run produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneReport {
    /// Termination cause.
    pub status: LaneStatus,
    /// Simulated cycles.
    pub cycles: u64,
    /// Multi-way dispatches performed.
    pub dispatches: u64,
    /// Dispatches that fell back after a signature miss (+1 cycle each).
    pub fallback_misses: u64,
    /// Actions executed.
    pub actions: u64,
    /// Local-memory references attributable to this lane (code fetches +
    /// data accesses, including the modeled loop-datapath accesses).
    pub mem_refs: u64,
    /// Input bytes consumed.
    pub bytes_consumed: u64,
    /// The output stream.
    pub output: Vec<u8>,
    /// `(pattern, byte position)` match reports.
    pub reports: Vec<(u16, u32)>,
    /// Final accept flag.
    pub accepted: bool,
    /// Final register file (diagnostics).
    pub regs: [u32; 16],
}

impl LaneReport {
    /// Input processing rate in MB/s at `clock_ghz` (paper metric: Rate).
    pub fn rate_mbps(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.bytes_consumed as f64 / self.cycles as f64 * clock_ghz * 1000.0
    }
}

/// One UDP lane.
#[derive(Debug, Clone)]
pub struct Lane {
    pub(crate) regs: [u32; 16],
    /// Flat word address of the lane's window origin.
    pub(crate) origin: u32,
    /// Flat window-base register (restricted addressing).
    pub(crate) wbase: u32,
    /// Flat action-base register.
    pub(crate) abase: u32,
    pub(crate) ascale: u8,
    pub(crate) sym_bits: u8,
    /// Flat base of the current state.
    pub(crate) base: u32,
    pub(crate) kind: ExecKind,
    pub(crate) status: LaneStatus,
    accept: bool,
    reports: Vec<(u16, u32)>,
    pub(crate) cycles: u64,
    pub(crate) dispatches: u64,
    pub(crate) fallback_misses: u64,
    pub(crate) actions_run: u64,
    extra_refs: u64,
    /// Predecoded view of the loaded image, window-relative. Lookups
    /// are validated against the raw memory word, so self-modifying
    /// programs (restricted/global addressing writes into code) fall
    /// back to decode-on-read with identical semantics.
    pub(crate) decoded: Option<Arc<DecodedProgram>>,
    /// True while the code span at `origin` is known to hold the
    /// pristine image (set by [`Lane::mark_code_clean`], cleared on any
    /// lane write into the span). While clean, code fetches come
    /// straight from the predecoded table — counted as memory
    /// references but without re-reading and re-validating the word.
    pub(crate) code_clean: bool,
    /// Image span in words (the region `code_clean` covers).
    code_len: u32,
}

impl Lane {
    /// Creates a lane positioned at a program image loaded at
    /// `origin_words`, decoding words lazily as they are fetched.
    pub fn new(image: &ProgramImage, origin_words: u32) -> Self {
        assert!(image.executable, "size-model-only image cannot run");
        Lane {
            regs: [0; 16],
            origin: origin_words,
            wbase: origin_words + image.init.wbase,
            abase: origin_words + image.init.abase,
            ascale: image.init.ascale,
            sym_bits: image.init.symbol_bits,
            base: origin_words + image.entry_base,
            kind: image.entry_kind,
            status: LaneStatus::Running,
            accept: false,
            reports: Vec::new(),
            cycles: 0,
            dispatches: 0,
            fallback_misses: 0,
            actions_run: 0,
            extra_refs: 0,
            decoded: None,
            code_clean: false,
            code_len: image.stats.span_words as u32,
        }
    }

    /// Like [`Lane::new`], but executing out of a shared predecoded
    /// table (decode-once / execute-many). The table must come from
    /// the same `image`; simulated cycles, references, and outputs are
    /// bit-identical to the lazy-decoding lane.
    pub fn with_decoded(
        image: &ProgramImage,
        origin_words: u32,
        decoded: Arc<DecodedProgram>,
    ) -> Self {
        let mut lane = Self::new(image, origin_words);
        lane.decoded = Some(decoded);
        lane
    }

    /// Looks up the transition at flat address `addr` whose raw memory
    /// word is `raw`: predecoded table when valid, decode otherwise.
    #[inline]
    fn transition_at(&self, addr: u32, raw: u32) -> TransitionWord {
        if let Some(dp) = &self.decoded {
            if let Some(t) = addr
                .checked_sub(self.origin)
                .and_then(|off| dp.transition(off as usize, raw))
            {
                return t;
            }
        }
        TransitionWord::decode(raw)
    }

    /// Action-view twin of [`Lane::transition_at`].
    #[inline]
    fn action_at(&self, addr: u32, raw: u32) -> Option<Action> {
        if let Some(dp) = &self.decoded {
            if let Some(a) = addr
                .checked_sub(self.origin)
                .and_then(|off| dp.action(off as usize, raw))
            {
                return a;
            }
        }
        Action::decode(raw)
    }

    /// Declares that the memory this lane will run against holds the
    /// pristine image at `origin` (freshly loaded, fully in bounds, no
    /// staging segment overlapping the code span). While that holds,
    /// code fetches are served from the predecoded table directly —
    /// still counted as memory references, but without the re-read and
    /// raw-word validation. The lane clears the flag itself the moment
    /// it writes into its own code span, so self-modifying programs
    /// keep decode-on-read semantics. Cycle, reference, and conflict
    /// numbers are identical either way.
    pub fn mark_code_clean(&mut self) {
        if self.decoded.is_some() {
            self.code_clean = true;
        }
    }

    /// Whether the pristine-code fast path survived the run: true only
    /// if [`Lane::mark_code_clean`] was called and no write landed in
    /// the code span since, i.e. the window's code prefix still holds
    /// the verbatim program image. The pool uses this to skip reloading
    /// the image on the next window reset.
    pub(crate) fn code_is_clean(&self) -> bool {
        self.code_clean
    }

    /// Records a lane write of word address `word_addr`; a write into
    /// the code span invalidates the pristine-code fast path.
    #[inline]
    fn note_write(&mut self, word_addr: u32) {
        if word_addr.wrapping_sub(self.origin) < self.code_len {
            self.code_clean = false;
        }
    }

    /// Fetches the transition word at `addr`: the raw bits plus, when
    /// the pristine-code fast path applies, the predecoded view.
    /// Counts exactly one memory reference either way.
    #[inline]
    fn fetch_transition(
        &self,
        addr: u32,
        mem: &mut LocalMemory,
        tables: CodeTables,
    ) -> (u32, Option<TransitionWord>) {
        if self.code_clean {
            let off = addr.wrapping_sub(self.origin) as usize;
            if let Some(&(raw, t)) = tables.transitions.get(off) {
                mem.count_read(addr);
                return (raw, Some(t));
            }
        }
        (mem.read_word(addr), None)
    }

    /// Action-view twin of [`Lane::fetch_transition`].
    #[inline]
    #[allow(clippy::option_option)]
    fn fetch_action(
        &self,
        addr: u32,
        mem: &mut LocalMemory,
        tables: CodeTables,
    ) -> (u32, Option<Option<Action>>) {
        if self.code_clean {
            let off = addr.wrapping_sub(self.origin) as usize;
            if let Some(&(raw, a)) = tables.actions.get(off) {
                mem.count_read(addr);
                return (raw, Some(a));
            }
        }
        (mem.read_word(addr), None)
    }

    /// Presets a scalar register (host staging before the run).
    pub fn preset_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::R15 {
            self.regs[r.index() as usize] = value;
        }
    }

    /// Convenience: allocate a memory just big enough, load the image at
    /// origin 0, and run the lane over `input`.
    pub fn run_program(image: &ProgramImage, input: &[u8], cfg: &LaneConfig) -> LaneReport {
        Self::run_program_capture(image, input, &crate::engine::Staging::default(), cfg).0
    }

    /// Like [`Lane::run_program`], but stages data segments/registers
    /// first and returns the final memory (bin tables, scratch output).
    pub fn run_program_capture(
        image: &ProgramImage,
        input: &[u8],
        staging: &crate::engine::Staging,
        cfg: &LaneConfig,
    ) -> (LaneReport, LocalMemory) {
        // Leave generous data headroom above the code for program scratch.
        let words = (image.stats.span_words + 16384).max(32768);
        let mut mem = LocalMemory::with_words(words);
        mem.load_words(0, &image.words);
        for (off, bytes) in &staging.segments {
            mem.load_bytes(*off, bytes);
        }
        let mut lane = Lane::with_decoded(image, 0, Arc::new(image.predecode()));
        if crate::engine::staging_clears_code(staging, image.stats.span_words) {
            lane.mark_code_clean();
        }
        for (r, v) in &staging.regs {
            lane.preset_reg(*r, *v);
        }
        let mut stream = BitStream::new(input);
        let mut out = OutputSink::new();
        let rep = lane.run(&mut mem, &mut stream, &mut out, cfg);
        (rep, mem)
    }

    /// Runs the lane to completion in single-activation (DFA) mode.
    pub fn run(
        &mut self,
        mem: &mut LocalMemory,
        stream: &mut BitStream,
        out: &mut OutputSink,
        cfg: &LaneConfig,
    ) -> LaneReport {
        // Hoist the predecoded tables out of the `Arc` into plain
        // slice locals for the whole run (see `CodeTables`).
        let dp = self.decoded.clone();
        let tables = dp.as_deref().map_or(CodeTables::EMPTY, |d| CodeTables {
            transitions: d.transitions(),
            actions: d.actions(),
        });
        // The chaos hooks share the cycle-cap compare: `cap` is the
        // nearest of the limits, and which one fired is only sorted
        // out on the (cold) exit path. The budget itself is derived
        // from the chunk's input length (cycles-per-byte with a floor,
        // ceilinged by the absolute `max_cycles` cap).
        let budget = cfg.budget_for(stream.len_bits().div_ceil(8) as usize);
        let chaos_panic = cfg.chaos_panic_at.unwrap_or(u64::MAX);
        let chaos_fault = cfg.chaos_fault_at.unwrap_or(u64::MAX);
        let cap = budget.min(chaos_panic).min(chaos_fault);
        while self.status == LaneStatus::Running {
            if self.cycles >= cap {
                self.status = cap_status(self.cycles, budget, chaos_panic, chaos_fault);
                break;
            }
            // Most dispatches in the common workloads are "trivial": a
            // consuming state hits a predecoded slot whose transition
            // carries no actions and lands in another consuming state.
            // Handle runs of those in a tight loop; anything else —
            // signature miss, attached actions, mode change, dirty code
            // — drops to the general `step` machinery. All modeled
            // counters (cycles, dispatches, reads, the R13 symbol
            // latch) advance exactly as the general path would.
            if self.kind == ExecKind::Consume && self.code_clean {
                let trans = tables.transitions;
                // With bank tracking off there is no per-address work
                // in a read count, so batch the slot-fetch accounting
                // in a register and credit it in one step on exit.
                let batch = !mem.tracks_banks();
                let mut batched = 0u64;
                loop {
                    if self.cycles >= cap {
                        self.status = cap_status(self.cycles, budget, chaos_panic, chaos_fault);
                        break;
                    }
                    let Some(s) = stream.read(self.sym_bits) else {
                        self.status = LaneStatus::InputExhausted;
                        break;
                    };
                    let slot = self.base + s;
                    match trans.get(slot.wrapping_sub(self.origin) as usize) {
                        Some(&(raw, t)) if raw != 0 && (raw >> 24) as u8 == (s & 0xFF) as u8 => {
                            // Signature hit: same bookkeeping as
                            // `dispatch_on`, minus the refetch.
                            self.cycles += 1;
                            self.dispatches += 1;
                            self.regs[13] = s;
                            if batch {
                                batched += 1;
                            } else {
                                mem.count_read(slot);
                            }
                            if t.attach() == 0 && t.kind() == ExecKind::Consume {
                                // Trivial: no actions, next state also
                                // consumes — stay in the tight loop.
                                self.base = self.wbase + u32::from(t.target());
                            } else {
                                self.take(&t, mem, stream, out, tables);
                                if self.status != LaneStatus::Running
                                    || self.kind != ExecKind::Consume
                                    || !self.code_clean
                                {
                                    break;
                                }
                            }
                        }
                        _ => {
                            // Signature miss (or slot outside the
                            // predecoded span): full dispatch. It
                            // re-fetches — and counts — the slot word
                            // itself; the peek above was uncounted, so
                            // the read tally stays exact.
                            self.dispatch_on(s, mem, stream, out, tables);
                            if self.status != LaneStatus::Running
                                || self.kind != ExecKind::Consume
                                || !self.code_clean
                            {
                                break;
                            }
                        }
                    }
                }
                if batched > 0 {
                    mem.add_reads(batched);
                }
                continue;
            }
            self.step(mem, stream, out, tables);
        }
        LaneReport {
            // Move the status out (it can carry a FaultKind payload);
            // the lane is consumed by this run — see the LaneStatus
            // lifecycle notes.
            status: std::mem::replace(&mut self.status, LaneStatus::Running),
            cycles: self.cycles,
            dispatches: self.dispatches,
            fallback_misses: self.fallback_misses,
            actions: self.actions_run,
            mem_refs: mem.refs() + self.extra_refs,
            bytes_consumed: u64::from(stream.byte_index()),
            output: out.take_bytes(),
            reports: std::mem::take(&mut self.reports),
            accepted: self.accept,
            regs: self.regs,
        }
    }

    /// Executes one dispatch (and its attached actions).
    #[inline]
    fn step(
        &mut self,
        mem: &mut LocalMemory,
        stream: &mut BitStream,
        out: &mut OutputSink,
        tables: CodeTables,
    ) {
        match self.kind {
            ExecKind::Halt => {
                self.status = LaneStatus::Halted(0);
            }
            ExecKind::Consume => {
                // `read` returns None (cursor unchanged) exactly when
                // fewer than `sym_bits` bits remain.
                match stream.read(self.sym_bits) {
                    Some(s) => self.dispatch_on(s, mem, stream, out, tables),
                    None => self.status = LaneStatus::InputExhausted,
                }
            }
            ExecKind::Flagged => {
                let s = self.regs[0] & 0xFF;
                self.dispatch_on(s, mem, stream, out, tables);
            }
            ExecKind::Pass => {
                // Pass-through state: take the fallback-slot word,
                // refilling the bit count carried in its signature.
                self.cycles += 1;
                self.dispatches += 1;
                let addr = self.base + udp_isa::FALLBACK_SLOT;
                let (raw, pre) = self.fetch_transition(addr, mem, tables);
                if raw == 0 {
                    self.status = LaneStatus::NoTransition;
                    return;
                }
                let t = pre.unwrap_or_else(|| self.transition_at(addr, raw));
                match t.signature() {
                    CHAIN_CONTINUE_SIGNATURE => {
                        self.status = LaneStatus::Fault(FaultKind::Addressing {
                            context: "epsilon fork outside NFA mode",
                            value: u32::from(CHAIN_CONTINUE_SIGNATURE),
                        });
                        return;
                    }
                    FALLBACK_SIGNATURE => {}
                    refill if refill <= 8 => {
                        if u64::from(refill) > stream.bit_index() {
                            self.status = LaneStatus::Fault(FaultKind::StreamUnderflow {
                                requested_bits: refill,
                                consumed_bits: stream.bit_index(),
                            });
                            return;
                        }
                        stream.putback(refill);
                    }
                    other => {
                        self.status = LaneStatus::Fault(FaultKind::Addressing {
                            context: "bad pass signature",
                            value: u32::from(other),
                        });
                        return;
                    }
                }
                self.take(&t, mem, stream, out, tables);
            }
        }
    }

    #[inline]
    fn dispatch_on(
        &mut self,
        s: u32,
        mem: &mut LocalMemory,
        stream: &mut BitStream,
        out: &mut OutputSink,
        tables: CodeTables,
    ) {
        self.cycles += 1;
        self.dispatches += 1;
        self.regs[13] = s; // symbol latch (R13)
        let slot = self.base + s;
        let (raw, pre) = self.fetch_transition(slot, mem, tables);
        // The signature lives in the top byte of the raw encoding, so
        // the hit check needs no decode at all.
        let hit = raw != 0 && (raw >> 24) as u8 == (s & 0xFF) as u8;
        let t = if hit {
            pre.unwrap_or_else(|| self.transition_at(slot, raw))
        } else {
            // Signature miss: one extra cycle to read the fallback slot.
            self.cycles += 1;
            self.fallback_misses += 1;
            let fb_slot = self.base + udp_isa::FALLBACK_SLOT;
            let (fb, fb_pre) = self.fetch_transition(fb_slot, mem, tables);
            if fb == 0 {
                self.status = LaneStatus::NoTransition;
                return;
            }
            fb_pre.unwrap_or_else(|| self.transition_at(fb_slot, fb))
        };
        self.take(&t, mem, stream, out, tables);
    }

    #[inline]
    pub(crate) fn take(
        &mut self,
        t: &TransitionWord,
        mem: &mut LocalMemory,
        stream: &mut BitStream,
        out: &mut OutputSink,
        tables: CodeTables,
    ) {
        if let Some(rel) = t.action_addr(0, self.ascale) {
            // `action_addr` gives either the direct attach (window-
            // relative low region) or needs the abase added; recompute
            // flat here so both modes land in this lane's window.
            let flat = match t.attach_mode() {
                udp_isa::AttachMode::Direct => self.origin + rel,
                udp_isa::AttachMode::Scaled => self.abase + (u32::from(t.attach()) << self.ascale),
            };
            self.run_action_block(flat, mem, stream, out, tables);
            if self.status != LaneStatus::Running {
                return;
            }
        }
        if t.kind() == ExecKind::Halt {
            self.status = LaneStatus::Halted(0);
            return;
        }
        self.base = self.wbase + u32::from(t.target());
        self.kind = t.kind();
    }

    fn run_action_block(
        &mut self,
        addr: u32,
        mem: &mut LocalMemory,
        stream: &mut BitStream,
        out: &mut OutputSink,
        tables: CodeTables,
    ) {
        self.action_block_tail(addr, BLOCK_CAP, mem, stream, out, tables);
    }

    /// Runs (the rest of) an action block with `budget` fetches left of
    /// the architectural [`BLOCK_CAP`]. Split out so the compiled
    /// backend can resume decode-on-read semantics mid-block the moment
    /// a cached block writes into its own code span.
    pub(crate) fn action_block_tail(
        &mut self,
        mut addr: u32,
        budget: usize,
        mem: &mut LocalMemory,
        stream: &mut BitStream,
        out: &mut OutputSink,
        tables: CodeTables,
    ) {
        for _ in 0..budget {
            let (raw, pre) = self.fetch_action(addr, mem, tables);
            let decoded = match pre {
                Some(a) => a,
                None => self.action_at(addr, raw),
            };
            let Some(a) = decoded else {
                self.status = LaneStatus::Fault(FaultKind::UndecodableWord { addr, raw });
                return;
            };
            let skip = self.exec(&a, mem, stream, out);
            self.actions_run += 1;
            if self.status != LaneStatus::Running {
                return;
            }
            if a.last {
                return;
            }
            addr += 1 + skip;
        }
        self.status = LaneStatus::Fault(FaultKind::LoopOverflow {
            context: "action block",
            len: BLOCK_CAP as u32,
            cap: BLOCK_CAP as u32,
        });
    }

    /// Runs a compile-time-decoded action block: the same actions the
    /// decode-on-read walk from `flat` would fetch (the caller
    /// guarantees it — pristine code span, attach bases unchanged), so
    /// the per-action table lookup and bounds check disappear and the
    /// counted code reads are credited in bulk. Every architectural
    /// effect — cycles from `exec`, `actions_run`, early termination on
    /// a status change — lands exactly as the interpreter's walk.
    ///
    /// `pure_code` (compile-time property: no memory-writing ops in the
    /// block) skips the pristine-code re-validation entirely; otherwise
    /// a write into the code span mid-block replays the remaining
    /// actions through [`Lane::action_block_tail`], so self-modifying
    /// blocks keep decode-on-read semantics.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_cached_block(
        &mut self,
        flat: u32,
        block: &[Action],
        pure_code: bool,
        fused: Option<&EmitSpan>,
        mem: &mut LocalMemory,
        stream: &mut BitStream,
        out: &mut OutputSink,
        tables: CodeTables,
    ) {
        let mut at = 0usize;
        if let Some(f) = fused {
            if !self.run_emit_span(f, mem, stream, out) {
                return;
            }
            at = EMIT_SPAN_LEN;
            if at >= block.len() {
                return;
            }
        }
        if pure_code {
            for (i, a) in block[at..].iter().enumerate() {
                self.exec(a, mem, stream, out);
                self.actions_run += 1;
                if self.status != LaneStatus::Running {
                    mem.add_reads(i as u64 + 1);
                    return;
                }
            }
            mem.add_reads((block.len() - at) as u64);
            return;
        }
        for (i, a) in block[at..].iter().enumerate() {
            let skip = self.exec(a, mem, stream, out);
            self.actions_run += 1;
            if self.status != LaneStatus::Running {
                mem.add_reads(i as u64 + 1);
                return;
            }
            if !self.code_clean {
                mem.add_reads(i as u64 + 1);
                if !a.last {
                    let abs = at + i;
                    self.action_block_tail(
                        flat + abs as u32 + 1 + skip,
                        BLOCK_CAP - abs - 1,
                        mem,
                        stream,
                        out,
                        tables,
                    );
                }
                return;
            }
        }
        mem.add_reads((block.len() - at) as u64);
    }

    /// Runs a recognized [`EmitSpan`] prefix as one straight-line
    /// routine. Register reads and writes happen in exact program
    /// order (aliased registers observe every intermediate value), and
    /// the charges are precisely the generic walk's: one cycle per
    /// action plus the loop-copy's 8-bytes-per-cycle bulk charge, one
    /// counted code read per action, `actions_run` per action. Returns
    /// `false` when the `LoopIn` length check faulted (the block is
    /// over; charges cover the three actions that architecturally ran).
    fn run_emit_span(
        &mut self,
        f: &EmitSpan,
        mem: &mut LocalMemory,
        stream: &mut BitStream,
        out: &mut OutputSink,
    ) -> bool {
        let idx = stream.byte_index();
        match self.run_emit_span_unsynced(f, idx, mem, stream, out) {
            Some(c) => {
                self.cycles += c;
                true
            }
            None => {
                self.cycles += 3;
                false
            }
        }
    }

    /// The in-burst twin of [`Lane::run_emit_span`], for a stream whose
    /// cursor sync the caller defers: `idx` is the live byte position
    /// the cursor will be synced to. Cycle charges are *returned* (the
    /// caller folds them into its bulk accumulator) rather than applied;
    /// every other effect — register writes, output, `actions_run`, the
    /// counted code reads — lands directly. `None` means the `LoopIn`
    /// length check faulted (status set; the three architecturally-run
    /// actions' non-cycle charges applied, their three cycles owed by
    /// the caller).
    #[inline]
    pub(crate) fn run_emit_span_unsynced(
        &mut self,
        f: &EmitSpan,
        idx: u32,
        mem: &mut LocalMemory,
        stream: &BitStream,
        out: &mut OutputSink,
    ) -> Option<u64> {
        const LOOP_CAP: u32 = 1 << 26;
        self.regs[f.d0 as usize] = idx.wrapping_add(f.off0);
        let len = self.regs[f.r1 as usize].wrapping_sub(self.regs[f.s1 as usize]);
        self.regs[f.d1 as usize] = len;
        let src = self.regs[f.r2 as usize];
        let n = self.regs[f.s2 as usize];
        if n > LOOP_CAP {
            self.actions_run += 3;
            mem.add_reads(3);
            self.status = LaneStatus::Fault(FaultKind::LoopOverflow {
                context: "loop action",
                len: n,
                cap: LOOP_CAP,
            });
            return None;
        }
        if n > 0 {
            out.push_bytes_with(|dst| stream.extend_bytes_into(src, n as usize, dst));
        }
        out.push_byte(self.regs[f.s3 as usize].wrapping_add(f.imm3) as u8);
        self.regs[f.d4 as usize] = idx.wrapping_add(f.off4);
        self.actions_run += 5;
        mem.add_reads(5);
        Some(5 + u64::from(n.div_ceil(8)))
    }

    fn rd(&self, r: Reg, stream: &BitStream) -> u32 {
        if r == Reg::R15 {
            stream.byte_index()
        } else {
            self.regs[r.index() as usize]
        }
    }

    fn wr(&mut self, r: Reg, v: u32) {
        if r != Reg::R15 {
            self.regs[r.index() as usize] = v;
        }
    }

    /// Executes one action; returns how many following actions to skip.
    fn exec(
        &mut self,
        a: &Action,
        mem: &mut LocalMemory,
        stream: &mut BitStream,
        out: &mut OutputSink,
    ) -> u32 {
        use Opcode::*;
        let imm = u32::from(a.imm);
        let simm = i32::from(a.imm as i16) as u32;
        let sv = self.rd(a.src, stream);
        // `rref` is only consulted by the two-operand ALU and loop ops;
        // reading it eagerly would put an extra (R15-branching)
        // register fetch on every action, so rv-using arms expand this.
        macro_rules! rv {
            () => {
                self.rd(a.rref, stream)
            };
        }
        let byte_origin = self.origin * 4;
        self.cycles += 1; // default; adjusted below for multi-cycle ops
        match a.op {
            Nop => {}
            MovI => self.wr(a.dst, imm),
            MovIH => {
                let old = self.rd(a.dst, stream);
                self.wr(a.dst, (old & 0xFFFF) | (imm << 16));
            }
            AddI => self.wr(a.dst, sv.wrapping_add(simm)),
            SubI => self.wr(a.dst, sv.wrapping_sub(simm)),
            AndI => self.wr(a.dst, sv & imm),
            OrI => self.wr(a.dst, sv | imm),
            XorI => self.wr(a.dst, sv ^ imm),
            ShlI => self.wr(a.dst, sv << (imm & 31)),
            ShrI => self.wr(a.dst, sv >> (imm & 31)),
            SarI => self.wr(a.dst, ((sv as i32) >> (imm & 31)) as u32),
            LoadW => {
                let v = mem.read_word(byte_origin.wrapping_add(sv.wrapping_add(simm)) / 4);
                self.wr(a.dst, v);
            }
            StoreW => {
                let addr = byte_origin.wrapping_add(self.rd(a.dst, stream).wrapping_add(simm));
                self.note_write(addr / 4);
                mem.write_word(addr / 4, sv);
            }
            LoadB => {
                let v = mem.read_byte(byte_origin.wrapping_add(sv.wrapping_add(simm)));
                self.wr(a.dst, u32::from(v));
            }
            StoreB => {
                let addr = byte_origin.wrapping_add(self.rd(a.dst, stream).wrapping_add(simm));
                self.note_write(addr / 4);
                mem.write_byte(addr, sv as u8);
            }
            SetSym => {
                if (1..=8).contains(&a.imm) {
                    self.sym_bits = a.imm as u8;
                } else {
                    self.status = LaneStatus::Fault(FaultKind::Addressing {
                        context: "SetSym symbol width",
                        value: u32::from(a.imm),
                    });
                }
            }
            SetSymT => {
                // Hardware-folded per-transition width (SsT model): free.
                self.cycles -= 1;
                if (1..=8).contains(&a.imm) {
                    self.sym_bits = a.imm as u8;
                } else {
                    self.status = LaneStatus::Fault(FaultKind::Addressing {
                        context: "SetSymT symbol width",
                        value: u32::from(a.imm),
                    });
                }
            }
            SetBase => self.wbase = self.origin + imm,
            SetABase => self.abase = self.origin + sv.wrapping_add(imm),
            SetAScale => self.ascale = (imm & 7) as u8,
            SEqI => self.wr(a.dst, u32::from(sv == imm)),
            SLtI => self.wr(a.dst, u32::from((sv as i32) < simm as i32)),
            SLtUI => self.wr(a.dst, u32::from(sv < imm)),
            ReadBits => match stream.read((imm & 31).max(1) as u8) {
                Some(v) => self.wr(a.dst, v),
                None => self.status = LaneStatus::InputExhausted,
            },
            PeekBits => {
                let v = stream.peek((imm & 31).max(1) as u8).unwrap_or(0);
                self.wr(a.dst, v);
            }
            BumpW => {
                // Read-modify-write: 2 cycles, 2 references.
                self.cycles += 1;
                let addr = byte_origin.wrapping_add(imm.wrapping_add(sv.wrapping_mul(4))) / 4;
                self.note_write(addr);
                let v = mem.read_word(addr).wrapping_add(1);
                mem.write_word(addr, v);
                self.wr(a.dst, v);
            }
            EmitB => out.push_byte(sv.wrapping_add(imm) as u8),
            EmitW => out.push_bytes(&sv.to_le_bytes()),
            SkipB => stream.skip_bytes(sv.wrapping_add(imm)),
            RefillI => {
                let bits = (imm & 15).min(8) as u8;
                if u64::from(bits) > stream.bit_index() {
                    self.status = LaneStatus::Fault(FaultKind::StreamUnderflow {
                        requested_bits: bits,
                        consumed_bits: stream.bit_index(),
                    });
                } else {
                    stream.putback(bits);
                }
            }
            Report => self.reports.push((a.imm, stream.byte_index())),
            Accept => self.accept = a.imm != 0,
            Halt => self.status = LaneStatus::Halted(a.imm),
            Crc => {
                let mut crc = self.rd(a.dst, stream) ^ (sv & 0xFF);
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0x82F6_3B78 & mask);
                }
                self.wr(a.dst, crc);
            }
            FnvB => {
                let h = (self.rd(a.dst, stream) ^ sv).wrapping_mul(0x0100_0193);
                self.wr(a.dst, h);
            }
            Hash => {
                let h = sv.wrapping_mul(0x9E37_79B1);
                let v = if (1..32).contains(&a.imm) {
                    h >> (32 - a.imm as u32)
                } else {
                    h
                };
                self.wr(a.dst, v);
            }
            InIdx => self.wr(a.dst, stream.byte_index().wrapping_add(simm)),
            Clz => self.wr(a.dst, sv.leading_zeros()),
            Popcnt => self.wr(a.dst, sv.count_ones()),
            OutIdx => self.wr(a.dst, (out.len() as u32).wrapping_add(simm)),
            AtEof => self.wr(a.dst, u32::from(stream.at_end())),
            EmitBits => out.push_bits(sv, a.imm1.clamp(1, 16)),
            Extract => {
                let width = (a.imm & 0x1F).max(1);
                let mask = if width >= 32 {
                    u32::MAX
                } else {
                    (1 << width) - 1
                };
                self.wr(a.dst, (sv >> a.imm1) & mask);
            }
            Deposit => {
                let old = self.rd(a.dst, stream);
                self.wr(a.dst, (old << a.imm1) | (sv & ((1 << a.imm1.max(1)) - 1)));
            }
            SkipIfZ => {
                if sv == 0 {
                    return u32::from(a.imm1);
                }
            }
            SkipIfNz => {
                if sv != 0 {
                    return u32::from(a.imm1);
                }
            }
            Mov => self.wr(a.dst, sv),
            Add => self.wr(a.dst, rv!().wrapping_add(sv)),
            Sub => self.wr(a.dst, rv!().wrapping_sub(sv)),
            And => self.wr(a.dst, rv!() & sv),
            Or => self.wr(a.dst, rv!() | sv),
            Xor => self.wr(a.dst, rv!() ^ sv),
            Shl => self.wr(a.dst, rv!() << (sv & 31)),
            Shr => self.wr(a.dst, rv!() >> (sv & 31)),
            Mul => self.wr(a.dst, rv!().wrapping_mul(sv)),
            Min => self.wr(a.dst, rv!().min(sv)),
            Max => self.wr(a.dst, rv!().max(sv)),
            SEq => self.wr(a.dst, u32::from(rv!() == sv)),
            SLt => self.wr(a.dst, u32::from((rv!() as i32) < (sv as i32))),
            SLtU => self.wr(a.dst, u32::from(rv!() < sv)),
            Sel => {
                if rv!() != 0 {
                    self.wr(a.dst, sv);
                }
            }
            LoopCmp => {
                // Stream-window vs stream-window compare, 8 bytes/cycle.
                let rv = rv!();
                let limit = self.regs[14].min(1 << 26);
                let mut n = 0u32;
                while n < limit
                    && stream.byte_at(rv.wrapping_add(n)) == stream.byte_at(sv.wrapping_add(n))
                {
                    n += 1;
                }
                self.charge_loop(n);
                self.wr(a.dst, n);
            }
            LoopCmpM => {
                let rv = rv!();
                let limit = self.regs[14].min(1 << 26);
                let mut n = 0u32;
                while n < limit
                    && mem.peek_byte(byte_origin.wrapping_add(rv).wrapping_add(n))
                        == stream.byte_at(sv.wrapping_add(n))
                {
                    n += 1;
                }
                self.charge_loop(n);
                self.extra_refs += u64::from(n.div_ceil(8));
                self.wr(a.dst, n);
            }
            LoopCpy => {
                let rv = rv!();
                let Some(n) = self.loop_len(sv) else { return 0 };
                // Bulk writes anywhere end the pristine-code fast path
                // (conservative; re-validation keeps semantics exact).
                self.code_clean = false;
                let dst_addr = self.rd(a.dst, stream);
                // Counted writes charge n refs; the reads fold into the
                // 8-byte datapath model.
                mem.copy_bytes_counted(
                    byte_origin.wrapping_add(rv),
                    byte_origin.wrapping_add(dst_addr),
                    n,
                );
                self.charge_loop(n);
            }
            LoopOut => {
                let rv = rv!();
                let Some(n) = self.loop_len(sv) else { return 0 };
                if n > 0 {
                    out.push_bytes_with(|dst| {
                        mem.extend_bytes_into(byte_origin.wrapping_add(rv), n as usize, dst);
                    });
                }
                self.extra_refs += u64::from(n.div_ceil(8));
                self.charge_loop(n);
            }
            LoopBack => {
                let rv = rv!();
                let Some(n) = self.loop_len(sv) else { return 0 };
                if rv == 0 || (rv as usize) > out.len() {
                    self.status = LaneStatus::Fault(FaultKind::Addressing {
                        context: "LoopBack distance outside the produced output",
                        value: rv,
                    });
                    return 0;
                }
                out.copy_back(rv, n);
                self.charge_loop(n);
            }
            LoopIn => {
                let rv = rv!();
                let Some(n) = self.loop_len(sv) else { return 0 };
                if n > 0 {
                    out.push_bytes_with(|dst| stream.extend_bytes_into(rv, n as usize, dst));
                }
                self.charge_loop(n);
            }
            PeekAt => self.wr(a.dst, u32::from(stream.byte_at(rv!().wrapping_add(sv)))),
            PeekW => {
                let base = rv!().wrapping_add(sv);
                let v = u32::from_le_bytes([
                    stream.byte_at(base),
                    stream.byte_at(base + 1),
                    stream.byte_at(base + 2),
                    stream.byte_at(base + 3),
                ]);
                self.wr(a.dst, v);
            }
            SubSat => self.wr(a.dst, rv!().saturating_sub(sv)),
            Hash2 => {
                let h = (rv!() ^ sv.wrapping_mul(0x9E37_79B9)).wrapping_mul(0x9E37_79B1);
                self.wr(a.dst, h);
            }
        }
        0
    }

    /// Loop actions move 8 bytes per cycle after issue.
    fn charge_loop(&mut self, n: u32) {
        self.cycles += u64::from(n.div_ceil(8));
    }

    /// Validates a loop-action length; absurd values (beyond any lane
    /// window) fault instead of spinning for minutes.
    fn loop_len(&mut self, n: u32) -> Option<u32> {
        const LOOP_CAP: u32 = 1 << 26;
        if n > LOOP_CAP {
            self.status = LaneStatus::Fault(FaultKind::LoopOverflow {
                context: "loop action",
                len: n,
                cap: LOOP_CAP,
            });
            None
        } else {
            Some(n)
        }
    }
}

/// Resolves which limit fired when the folded cycle-cap compare trips:
/// the panic hook wins (it models an undetected crash), then the
/// injected-fault hook, then the real cycle budget.
#[cold]
pub(crate) fn cap_status(
    cycles: u64,
    budget: u64,
    chaos_panic: u64,
    chaos_fault: u64,
) -> LaneStatus {
    if cycles >= chaos_panic {
        panic!("chaos: injected lane panic at cycle {cycles}");
    }
    if cycles >= chaos_fault {
        return LaneStatus::Fault(FaultKind::ChaosInjected { at_cycle: cycles });
    }
    LaneStatus::Fault(FaultKind::CycleBudget { limit: budget })
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::{LayoutOptions, ProgramBuilder, Target};
    use udp_isa::action::{Action, Opcode};

    fn cfg() -> LaneConfig {
        LaneConfig {
            max_cycles: 100_000,
            ..Default::default()
        }
    }

    fn emit(b: u8) -> Vec<Action> {
        // r12 is never written in these tests, so src + imm == imm.
        vec![Action::imm(
            Opcode::EmitB,
            Reg::R0,
            Reg::new(12),
            u16::from(b),
        )]
    }

    /// One-state scanner that emits '!' on 'a' and loops otherwise.
    fn scanner() -> udp_asm::ProgramImage {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(s, b'a' as u16, Target::State(s), emit(b'!'));
        b.fallback_arc(s, Target::State(s), vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    #[test]
    fn scans_and_emits() {
        let r = Lane::run_program(&scanner(), b"banana", &cfg());
        assert_eq!(r.status, LaneStatus::InputExhausted);
        assert_eq!(r.output, b"!!!");
        assert_eq!(r.bytes_consumed, 6);
        assert_eq!(r.dispatches, 6);
    }

    #[test]
    fn fallback_costs_one_extra_cycle() {
        let r = Lane::run_program(&scanner(), b"bbbb", &cfg());
        // 4 dispatches, all misses: 4 + 4 fallback cycles.
        assert_eq!(r.fallback_misses, 4);
        assert_eq!(r.cycles, 8);
    }

    #[test]
    fn hit_costs_one_cycle_plus_action() {
        let r = Lane::run_program(&scanner(), b"aaaa", &cfg());
        assert_eq!(r.fallback_misses, 0);
        // 4 dispatches + 4 emit actions.
        assert_eq!(r.cycles, 8);
    }

    #[test]
    fn no_transition_when_fallback_missing() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(s, b'x' as u16, Target::State(s), vec![]);
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        let r = Lane::run_program(&img, b"q", &cfg());
        assert_eq!(r.status, LaneStatus::NoTransition);
    }

    #[test]
    fn halt_arc_stops_the_lane() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(s, 0, Target::Halt, emit(b'E'));
        b.fallback_arc(s, Target::State(s), vec![]);
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        let r = Lane::run_program(&img, &[7, 7, 0, 7], &cfg());
        assert_eq!(r.status, LaneStatus::Halted(0));
        assert_eq!(r.output, b"E");
        assert_eq!(r.bytes_consumed, 3);
    }

    #[test]
    fn sub_byte_symbols_dispatch() {
        // 2-bit symbols: emit the symbol value as a digit.
        let mut b = ProgramBuilder::new();
        b.set_symbol_bits(2);
        let s = b.add_consuming_state();
        b.set_entry(s);
        for sym in 0u16..4 {
            b.labeled_arc(s, sym, Target::State(s), emit(b'0' + sym as u8));
        }
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        // 0b00_01_10_11 = 0x1B
        let r = Lane::run_program(&img, &[0x1B], &cfg());
        assert_eq!(r.output, b"0123");
    }

    #[test]
    fn refill_state_puts_bits_back() {
        // Dispatch 3 bits; a pass state refills 1 bit and the next
        // dispatch re-reads it.
        let mut b = ProgramBuilder::new();
        b.set_symbol_bits(3);
        let done = b.add_consuming_state(); // consumes remaining symbol
        let refill = b.add_pass_state(
            1,
            udp_asm::Arc {
                target: Target::State(done),
                actions: emit(b'R'),
            },
        );
        let start = b.add_consuming_state();
        b.set_entry(start);
        // Any 3-bit symbol goes to the refill state.
        b.fallback_arc(start, Target::State(refill), vec![]);
        for sym in 0u16..8 {
            b.labeled_arc(done, sym, Target::Halt, emit(b'0' + sym as u8));
        }
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        // Input bits: 101 101 -> start consumes 101, refill puts back 1,
        // done consumes 110 -> digit '6'... byte = 0b101_101_00 = 0xB4;
        // after refill cursor is at bit 2, reading bits 2..5 = 110.
        let r = Lane::run_program(&img, &[0xB4], &cfg());
        assert_eq!(r.status, LaneStatus::Halted(0));
        assert_eq!(r.output, b"R6");
    }

    #[test]
    fn flagged_dispatch_reads_r0() {
        // First state consumes a byte into R0 via actions? Simpler:
        // preset R0 and enter a flagged state directly.
        let mut b = ProgramBuilder::new();
        let f = b.add_flagged_state();
        b.set_entry(f);
        b.labeled_arc(f, 42, Target::Halt, emit(b'Y'));
        b.fallback_arc(f, Target::Halt, emit(b'N'));
        let img = b.assemble(&LayoutOptions::default()).unwrap();

        let words = (img.stats.span_words + 1024).max(8192);
        let mut mem = LocalMemory::with_words(words);
        mem.load_words(0, &img.words);
        let mut lane = Lane::new(&img, 0);
        lane.preset_reg(Reg::new(0), 42);
        let mut stream = BitStream::new(b"");
        let mut out = OutputSink::new();
        let r = lane.run(&mut mem, &mut stream, &mut out, &cfg());
        assert_eq!(r.output, b"Y");
    }

    #[test]
    fn action_arithmetic_and_memory() {
        // On byte 'g': r1 = 5; r2 = r1 + 10; store r2 at byte 512; load it
        // back into r3; emit r3.
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        let r1 = Reg::new(1);
        let r2 = Reg::new(2);
        let r3 = Reg::new(3);
        let r4 = Reg::new(4);
        b.labeled_arc(
            s,
            b'g' as u16,
            Target::Halt,
            vec![
                Action::imm(Opcode::MovI, r1, Reg::R0, 5),
                Action::imm(Opcode::AddI, r2, r1, 10),
                Action::imm(Opcode::MovI, r4, Reg::R0, 2048),
                Action::imm(Opcode::StoreW, r4, r2, 0),
                Action::imm(Opcode::LoadW, r3, r4, 0),
                Action::imm(Opcode::EmitB, Reg::R0, r3, 50),
            ],
        );
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        let r = Lane::run_program(&img, b"g", &cfg());
        assert_eq!(r.status, LaneStatus::Halted(0));
        assert_eq!(r.output, &[65]); // 15 + 50
        assert_eq!(r.regs[2], 15);
    }

    #[test]
    fn skip_if_zero_predication() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        let r1 = Reg::new(1);
        b.labeled_arc(
            s,
            b'x' as u16,
            Target::Halt,
            vec![
                Action::imm(Opcode::MovI, r1, Reg::R0, 0),
                Action::imm2(Opcode::SkipIfZ, Reg::R0, r1, 1, 0),
                Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, u16::from(b'A')),
                Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, u16::from(b'B')),
            ],
        );
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        let r = Lane::run_program(&img, b"x", &cfg());
        assert_eq!(r.output, b"B", "the skipped action must not run");
    }

    #[test]
    fn cycle_limit_fires() {
        // Flagged self-loop never consumes input: infinite.
        let mut b = ProgramBuilder::new();
        let f = b.add_flagged_state();
        b.set_entry(f);
        b.fallback_arc(f, Target::State(f), vec![]);
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        let r = Lane::run_program(
            &img,
            b"",
            &LaneConfig {
                max_cycles: 100,
                ..Default::default()
            },
        );
        assert_eq!(
            r.status,
            LaneStatus::Fault(FaultKind::CycleBudget { limit: 100 })
        );
    }

    #[test]
    fn proportional_budget_stops_runaway_programs_early() {
        // Same infinite flagged self-loop, default config: the derived
        // budget (floor, since the input is empty) fires long before
        // the 2e9 absolute cap would.
        let mut b = ProgramBuilder::new();
        let f = b.add_flagged_state();
        b.set_entry(f);
        b.fallback_arc(f, Target::State(f), vec![]);
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        let cfg = LaneConfig::default();
        let r = Lane::run_program(&img, b"", &cfg);
        assert_eq!(
            r.status,
            LaneStatus::Fault(FaultKind::CycleBudget {
                limit: cfg.min_cycle_budget
            })
        );
        assert!(r.cycles <= cfg.min_cycle_budget + 1);
    }

    #[test]
    fn budget_derivation_respects_floor_and_absolute_cap() {
        let cfg = LaneConfig::default();
        assert_eq!(cfg.budget_for(0), cfg.min_cycle_budget);
        assert_eq!(cfg.budget_for(1024), 1024 * cfg.cycles_per_byte);
        assert_eq!(cfg.budget_for(usize::MAX), cfg.max_cycles);
        // The absolute cap overrides the floor too.
        let tight = LaneConfig {
            max_cycles: 50,
            ..LaneConfig::default()
        };
        assert_eq!(tight.budget_for(4096), 50);
        // cycles_per_byte = 0 disables the proportional budget.
        let absolute = LaneConfig {
            cycles_per_byte: 0,
            ..LaneConfig::default()
        };
        assert_eq!(absolute.budget_for(0), absolute.max_cycles);
    }

    #[test]
    fn cert_derived_budget_orders_floor_slope_and_cap() {
        let cert = udp_asm::ResourceCert {
            max_cycles_per_byte: Some(10),
            base_cycles: 100,
            min_bytes_per_cycle_progress: Some((1, 10)),
            max_output_expansion: Some(2),
            base_output_bytes: 8,
            ..Default::default()
        };
        let cfg = LaneConfig::default().with_cert(&cert);
        // Slope doubles the certified ratio; floor covers 2*base+slack.
        assert_eq!(cfg.cycles_per_byte, 20);
        assert_eq!(cfg.min_cycle_budget, 2 * 100 + 1024);
        // Clamp order: floor applies to the proportional term first...
        assert_eq!(cfg.budget_for(1), cfg.min_cycle_budget);
        assert_eq!(cfg.budget_for(10_000), 200_000);
        // ...and max_cycles still ceilings the result, even over the
        // cert-derived floor.
        let tight = LaneConfig {
            max_cycles: 500,
            ..cfg.clone()
        };
        assert_eq!(tight.budget_for(1), 500);
        assert_eq!(tight.budget_for(10_000), 500);
        // Every certified clean run fits the derived budget:
        // base + per*n <= budget_for(n) for representative n.
        for n in [0usize, 1, 7, 100, 4096, 1 << 20] {
            let need = cert.base_cycles + 10 * n as u64;
            assert!(
                cfg.budget_for(n) >= need,
                "budget {} < certified worst case {} at n={}",
                cfg.budget_for(n),
                need,
                n
            );
        }
        // A certified ratio of zero still yields a positive slope so
        // the `cycles_per_byte == 0` disable sentinel never fires.
        let halting = udp_asm::ResourceCert {
            max_cycles_per_byte: Some(0),
            max_output_expansion: Some(0),
            ..Default::default()
        };
        assert_eq!(LaneConfig::default().with_cert(&halting).cycles_per_byte, 1);
        // Incomplete certificates leave the generic constants alone.
        let blocked = udp_asm::ResourceCert {
            max_cycles_per_byte: None,
            max_output_expansion: Some(1),
            ..Default::default()
        };
        let unchanged = LaneConfig::default().with_cert(&blocked);
        assert_eq!(
            unchanged.cycles_per_byte,
            LaneConfig::default().cycles_per_byte
        );
        assert_eq!(
            unchanged.min_cycle_budget,
            LaneConfig::default().min_cycle_budget
        );
    }

    #[test]
    fn budget_derivation_saturates_instead_of_wrapping() {
        // `cycles_per_byte * input_bytes` on a multi-GB chunk overflows
        // u64; the product must saturate (and then clamp to max_cycles),
        // never wrap around to a tiny budget that would fault legitimate
        // large inputs almost immediately. With the ceiling lifted to
        // u64::MAX the saturated product itself must survive.
        let uncapped = LaneConfig {
            max_cycles: u64::MAX,
            ..LaneConfig::default()
        };
        assert_eq!(uncapped.budget_for(usize::MAX), u64::MAX);
        // A wrapped multiply here would land far below min_cycle_budget.
        let huge = (u64::MAX / uncapped.cycles_per_byte) as usize + 1;
        assert_eq!(uncapped.budget_for(huge), u64::MAX);
        assert!(uncapped.budget_for(huge) >= uncapped.min_cycle_budget);
    }

    #[test]
    fn chaos_fault_hook_surfaces_as_typed_fault() {
        let r = Lane::run_program(
            &scanner(),
            &[b'a'; 64],
            &LaneConfig {
                chaos_fault_at: Some(10),
                ..cfg()
            },
        );
        assert!(
            matches!(
                r.status,
                LaneStatus::Fault(FaultKind::ChaosInjected { at_cycle }) if at_cycle >= 10
            ),
            "{:?}",
            r.status
        );
    }

    #[test]
    fn report_action_records_positions() {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(
            s,
            b'z' as u16,
            Target::State(s),
            vec![Action::imm(Opcode::Report, Reg::R0, Reg::R0, 3)],
        );
        b.fallback_arc(s, Target::State(s), vec![]);
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        let r = Lane::run_program(&img, b"azbz", &cfg());
        assert_eq!(r.reports, vec![(3, 2), (3, 4)]);
    }

    #[test]
    fn rate_is_bytes_per_cycle_scaled() {
        let r = Lane::run_program(&scanner(), b"aaaa", &cfg());
        // 8 cycles for 4 bytes at 1 GHz = 500 MB/s.
        assert!((r.rate_mbps(1.0) - 500.0).abs() < 1e-9);
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;
        use udp_asm::{LaneInit, LayoutStats, ProgramImage};
        use udp_isa::transition::ExecKind;

        /// A lane fed arbitrary garbage as a program must terminate with
        /// a status — never panic, never hang past the cycle cap.
        fn garbage_image(words: Vec<u32>, entry: u32, kind_sel: u8) -> ProgramImage {
            let kind = [
                ExecKind::Consume,
                ExecKind::Flagged,
                ExecKind::Pass,
                ExecKind::Halt,
            ][(kind_sel & 3) as usize];
            let span = words.len();
            ProgramImage {
                words,
                entry_base: entry % span.max(1) as u32,
                entry_kind: kind,
                init: LaneInit {
                    symbol_bits: (kind_sel % 8) + 1,
                    abase: 0,
                    ascale: kind_sel & 3,
                    wbase: 0,
                },
                state_bases: vec![],
                stats: LayoutStats {
                    span_words: span,
                    ..Default::default()
                },
                executable: true,
                cert: None,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn prop_garbage_programs_never_panic(
                words in proptest::collection::vec(any::<u32>(), 8..600),
                entry in any::<u32>(),
                kind_sel in any::<u8>(),
                input in proptest::collection::vec(any::<u8>(), 0..64),
            ) {
                let img = garbage_image(words, entry, kind_sel);
                let rep = Lane::run_program(&img, &input, &LaneConfig {
                    max_cycles: 20_000,
                    ..Default::default()
                });
                prop_assert_ne!(rep.status, LaneStatus::Running);
            }
        }
    }
}

//! The 64-lane UDP device: program loading, data-parallel execution,
//! NFA multi-activation mode, and bank-conflict accounting.

use crate::error::{FaultKind, SimError};
use crate::lane::{Lane, LaneConfig, LaneReport, LaneStatus};
use crate::memory::LocalMemory;
use crate::pool::{self, RunParams};
use crate::stream::{BitStream, OutputSink};
use crate::supervisor::{self, RunHealth, SupervisorOptions};
use std::sync::Arc;
use udp_asm::layout::CHAIN_CONTINUE_SIGNATURE;
use udp_asm::{DecodedProgram, ProgramImage};
use udp_isa::mem::{AddressingMode, BANK_WORDS, NUM_BANKS};
use udp_isa::transition::{ExecKind, TransitionWord, FALLBACK_SIGNATURE};
use udp_isa::Reg;

/// Data staged into each lane's window before a run (dictionaries,
/// histogram bin tables, output areas) — the DLT engine's job in the real
/// system.
#[derive(Debug, Clone, Default)]
pub struct Staging {
    /// `(window-relative byte offset, bytes)` segments.
    pub segments: Vec<(u32, Vec<u8>)>,
    /// Scalar registers preset before the run.
    pub regs: Vec<(Reg, u32)>,
}

/// Which per-lane execution engine a run uses (DESIGN.md §2.6.3).
///
/// The interpreter is the reference semantics and permanent differential
/// oracle; the compiled backend specializes the verified program into
/// dense dispatch tables at load time and must reproduce the
/// interpreter's [`UdpRunReport`] bit-for-bit (it deoptimizes back to
/// the interpreter whenever specialization assumptions break, e.g.
/// self-modifying code or `SetBase`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Per-symbol interpreter over the predecoded program (reference).
    #[default]
    Interpreter,
    /// Tier-2 load-time specialization: per-state dense dispatch tables
    /// with a burst inner loop, falling back to the interpreter when
    /// its assumptions no longer hold. Timing-model counters are
    /// reconstructed so reports stay bit-identical. Honored under
    /// [`AddressingMode::Local`]; sharing modes always interpret.
    Compiled,
}

/// An `UDP_SIM_BACKEND` / [`ExecBackend::from_str`] value that names no
/// backend. Carries the rejected string so the caller (or the warning
/// [`ExecBackend::from_env`] prints) can show exactly what was typed —
/// a typo'd `UDP_SIM_BACKEND=complied` must not silently run the wrong
/// backend matrix leg.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    /// The string that matched no backend name.
    pub value: String,
}

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown execution backend `{}` (expected `interpreter` or `compiled`)",
            self.value
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for ExecBackend {
    type Err = ParseBackendError;

    /// Parses a backend name, case-insensitively: `interpreter` (or the
    /// aliases `interp` / `reference`) and `compiled`. Anything else is
    /// a typed [`ParseBackendError`] — never a silent default.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("interpreter")
            || s.eq_ignore_ascii_case("interp")
            || s.eq_ignore_ascii_case("reference")
        {
            Ok(ExecBackend::Interpreter)
        } else if s.eq_ignore_ascii_case("compiled") {
            Ok(ExecBackend::Compiled)
        } else {
            Err(ParseBackendError {
                value: s.to_string(),
            })
        }
    }
}

impl ExecBackend {
    /// Backend selected by the `UDP_SIM_BACKEND` environment variable
    /// (parsed with [`ExecBackend::from_str`]; unset or empty means the
    /// interpreter). This is what lets CI run whole test suites as a
    /// backend matrix without per-callsite plumbing:
    /// [`UdpRunOptions::default`] starts from this value.
    ///
    /// A set-but-unparsable value falls back to the interpreter but
    /// prints one loud warning to stderr (once per process): the
    /// default-per-run-options call pattern means this function cannot
    /// fail, but a typo'd matrix leg silently testing the wrong backend
    /// is exactly the failure CI exists to catch.
    pub fn from_env() -> Self {
        match std::env::var("UDP_SIM_BACKEND") {
            Ok(v) if v.is_empty() => ExecBackend::Interpreter,
            Ok(v) => v.parse().unwrap_or_else(|e| {
                static WARNED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
                WARNED.get_or_init(|| {
                    eprintln!("udp-sim: UDP_SIM_BACKEND: {e}; using the interpreter");
                });
                ExecBackend::Interpreter
            }),
            Err(_) => ExecBackend::Interpreter,
        }
    }
}

/// Options for a device run.
#[derive(Debug, Clone)]
pub struct UdpRunOptions {
    /// Addressing mode (affects energy and conflict accounting).
    pub addressing: AddressingMode,
    /// Banks per lane window. Code + staged data must fit.
    pub banks_per_lane: usize,
    /// Per-lane cycle cap.
    pub lane: LaneConfig,
    /// Execute chunks on a persistent pool of host worker threads
    /// instead of one after another. Only a host-side speed knob:
    /// modeled time is recomputed from the per-lane reports with the
    /// wave formula (DESIGN.md §2.6.2), so cycles, stalls, references,
    /// and outputs are bit-identical to the sequential path. Honored
    /// under [`AddressingMode::Local`] (disjoint lane windows); sharing
    /// modes fall back to sequential execution because their lanes may
    /// genuinely communicate through memory.
    pub parallel: bool,
    /// Run `udp-verify`'s static checks over the image before loading
    /// it; a report with errors aborts the run as [`SimError::Verify`].
    pub verify: bool,
    /// Attach the chunk supervisor (DESIGN.md §8): faulted chunks climb
    /// the retry → fallback → quarantine ladder instead of silently
    /// dropping their output, and [`UdpRunReport::health`] records the
    /// per-chunk outcomes. `None` (the default) records passive health
    /// only: faulted chunks are quarantined directly. Honored on the
    /// local-addressing paths; sharing modes record passive health.
    pub supervise: Option<SupervisorOptions>,
    /// Per-lane execution engine. Defaults to
    /// [`ExecBackend::from_env`], so `UDP_SIM_BACKEND=compiled` flips
    /// every default-constructed run to the compiled backend.
    pub backend: ExecBackend,
}

impl Default for UdpRunOptions {
    fn default() -> Self {
        UdpRunOptions {
            addressing: AddressingMode::Local,
            banks_per_lane: 1,
            lane: LaneConfig::default(),
            parallel: false,
            verify: false,
            supervise: None,
            backend: ExecBackend::from_env(),
        }
    }
}

/// Aggregate results of a device run.
///
/// Compares equal field-by-field, which is how the determinism tests
/// check that the parallel wave path reproduces the sequential model
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpRunReport {
    /// Per-lane reports, one per input chunk actually executed.
    pub lanes: Vec<LaneReport>,
    /// Lanes that ran (≤ 64, limited by code size / banks_per_lane).
    pub lanes_used: usize,
    /// Wall cycles: the slowest lane (data-parallel barrier) plus
    /// modeled bank-conflict stalls.
    pub wall_cycles: u64,
    /// Modeled conflict stall cycles included in `wall_cycles`.
    pub conflict_stalls: u64,
    /// Total input bytes consumed across lanes.
    pub bytes_in: u64,
    /// Total local-memory references across lanes.
    pub mem_refs: u64,
    /// Addressing mode used (for the energy model).
    pub addressing: AddressingMode,
    /// Per-chunk outcomes and fault histogram (DESIGN.md §8). Purely a
    /// function of the per-lane reports and the supervision config, so
    /// it participates in the sequential-vs-pooled bit-identity
    /// contract like every other field.
    pub health: RunHealth,
}

impl UdpRunReport {
    /// Aggregate throughput in MB/s at `clock_ghz` (paper metric:
    /// Throughput).
    pub fn throughput_mbps(&self, clock_ghz: f64) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        self.bytes_in as f64 / self.wall_cycles as f64 * clock_ghz * 1000.0
    }

    /// All lane outputs concatenated in lane order.
    pub fn concat_output(&self) -> Vec<u8> {
        let total = self.lanes.iter().map(|l| l.output.len()).sum();
        let mut v = Vec::with_capacity(total);
        for l in &self.lanes {
            v.extend_from_slice(&l.output);
        }
        v
    }
}

/// The UDP device: 64 lanes over a 1 MB multi-bank local memory.
#[derive(Debug)]
pub struct Udp {
    mem: LocalMemory,
}

impl Udp {
    /// A device with a zeroed 1 MB local memory.
    pub fn new() -> Self {
        Udp {
            mem: LocalMemory::new(),
        }
    }

    /// How many lanes can run `image` given a window of
    /// `banks_per_lane` banks each.
    pub fn max_lanes(image: &ProgramImage, banks_per_lane: usize) -> usize {
        let window_words = banks_per_lane * BANK_WORDS;
        if image.stats.span_words > window_words {
            return 0;
        }
        NUM_BANKS / banks_per_lane.max(1)
    }

    /// Runs `image` data-parallel over `inputs`, one chunk per lane, with
    /// optional per-lane staging. Chunks beyond lane capacity are executed
    /// in additional waves (wall cycles accumulate).
    ///
    /// Thin wrapper over [`Udp::try_run_data_parallel`] for callers whose
    /// programs are known to fit (compiled kernels, benches).
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`] — an oversized program, a bad bank
    /// split, or a non-executable image. Use
    /// [`Udp::try_run_data_parallel`] to handle those as values.
    pub fn run_data_parallel(
        &mut self,
        image: &ProgramImage,
        inputs: &[&[u8]],
        staging: &Staging,
        opts: &UdpRunOptions,
    ) -> UdpRunReport {
        self.try_run_data_parallel(image, inputs, staging, opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Udp::run_data_parallel`]: pre-flight
    /// misconfiguration comes back as a [`SimError`] instead of a
    /// panic, and a chunk whose execution panics (under
    /// [`UdpRunOptions::parallel`]) degrades to
    /// [`LaneStatus::Fault`] in its own report while the sibling
    /// chunks' reports survive.
    ///
    /// The program is predecoded once into a [`DecodedProgram`] shared by
    /// every lane, so the per-symbol hot path indexes a table instead of
    /// re-decoding transition/action words. Under local addressing the
    /// run goes through the persistent lane pool (`pool` module): private
    /// window memories with incremental dirty-prefix resets, and — with
    /// [`UdpRunOptions::parallel`] set — dynamic chunk scheduling over
    /// persistent worker threads. Modeled time is recomputed from the
    /// per-lane reports with the wave formula, keeping the report
    /// bit-identical to sequential runs.
    pub fn try_run_data_parallel(
        &mut self,
        image: &ProgramImage,
        inputs: &[&[u8]],
        staging: &Staging,
        opts: &UdpRunOptions,
    ) -> Result<UdpRunReport, SimError> {
        self.try_run_inner(image, None, inputs, staging, opts)
    }

    /// [`Udp::try_run_data_parallel`] with a caller-provided predecoded
    /// table, for callers that run the same image many times (the serve
    /// runtime's kernel registry, the artifact store's AOT pipeline).
    /// Skips the per-run `image.predecode()` — the one remaining
    /// per-dispatch cost proportional to program size.
    ///
    /// `decoded` must be the predecode of *this* `image`; the engine
    /// cross-checks the table length and silently predecodes afresh on
    /// a mismatch (correctness is never entrusted to the caller — a
    /// stale table would merely lose the sharing win).
    pub fn try_run_data_parallel_shared(
        &mut self,
        image: &ProgramImage,
        decoded: &Arc<DecodedProgram>,
        inputs: &[&[u8]],
        staging: &Staging,
        opts: &UdpRunOptions,
    ) -> Result<UdpRunReport, SimError> {
        self.try_run_inner(image, Some(decoded), inputs, staging, opts)
    }

    fn try_run_inner(
        &mut self,
        image: &ProgramImage,
        shared_decoded: Option<&Arc<DecodedProgram>>,
        inputs: &[&[u8]],
        staging: &Staging,
        opts: &UdpRunOptions,
    ) -> Result<UdpRunReport, SimError> {
        if !image.executable {
            return Err(SimError::NotExecutable);
        }
        if opts.banks_per_lane == 0 || opts.banks_per_lane > NUM_BANKS {
            return Err(SimError::BadBankSplit {
                banks_per_lane: opts.banks_per_lane,
            });
        }
        let window_words = opts.banks_per_lane * BANK_WORDS;
        if image.stats.span_words > window_words {
            return Err(SimError::ProgramTooLarge {
                span_words: image.stats.span_words,
                window_words,
                banks_per_lane: opts.banks_per_lane,
            });
        }
        if let Some(sup) = &opts.supervise {
            sup.validate()?;
        }
        if opts.verify {
            let vopts = udp_verify::VerifyOptions::with_banks(opts.banks_per_lane);
            let report = udp_verify::verify_image(image, &vopts);
            if !report.is_clean() {
                return Err(SimError::Verify(Box::new(report)));
            }
        }
        let lanes_cap = (NUM_BANKS / opts.banks_per_lane).max(1);
        // Images carrying a complete verifier resource certificate run
        // under a budget derived from the certified worst case instead
        // of the generic constants. Host register staging invalidates
        // the certificate's reset-state premise, so it disables the
        // derivation; both execution paths below share the one config
        // so sequential and pooled runs stay bit-identical.
        let lane_cfg = match &image.cert {
            Some(cert) if staging.regs.is_empty() => opts.lane.with_cert(cert),
            _ => opts.lane.clone(),
        };
        let decoded = match shared_decoded {
            Some(d) if d.len() == image.words.len() => Arc::clone(d),
            _ => Arc::new(image.predecode()),
        };
        // Per-bank counts only feed the conflict model, which local
        // (disjoint-window) addressing never consults.
        self.mem.set_bank_tracking(opts.addressing.allows_sharing());
        // Local addressing means provably disjoint windows, so every
        // lane can execute against a private window-sized memory and be
        // copied back — sequentially this keeps one hot window-sized
        // buffer in cache instead of striding the full 1 MB device
        // memory; with `parallel` it is what makes the worker pool
        // safe. Sharing modes stay on the shared device memory: their
        // lanes may genuinely communicate, and the conflict model needs
        // the merged per-bank reference counts.
        if opts.addressing == AddressingMode::Local {
            // Specialize once per run; every chunk shares the tables.
            // A compile decline (oversized state space, wide symbols,
            // non-executable image, nothing to fuse) silently falls
            // back to the interpreter — the semantics are identical
            // either way; `compiled_decline_reason` surfaces the why.
            let compiled = if opts.backend == ExecBackend::Compiled {
                crate::compiled::CompiledProgram::compile(image, &decoded).ok()
            } else {
                None
            };
            let params = RunParams {
                image,
                decoded: &decoded,
                staging,
                cfg: &lane_cfg,
                window_words,
                lanes_cap,
                code_clean: staging_clears_code(staging, image.stats.span_words),
                compiled: compiled.as_ref(),
            };
            let (mut lane_reports, mut finals) = if opts.parallel && inputs.len() > 1 {
                let (results, finals) = pool::run_pooled(&params, inputs);
                // Chunks whose worker died before reporting (a panic
                // escaping the per-chunk catch_unwind) degrade to Fault
                // reports; everything else is index-addressed.
                let reports = results
                    .into_iter()
                    .map(|r| {
                        r.unwrap_or_else(|| {
                            pool::fault_lane_report(
                                "worker terminated before reporting".to_string(),
                            )
                        })
                    })
                    .collect();
                (reports, finals)
            } else {
                // With a supervisor attached, the sequential path also
                // catches per-chunk panics so both paths feed the
                // supervisor the same fault stream.
                pool::run_sequential(&params, inputs, opts.supervise.is_some())
            };
            let health = match &opts.supervise {
                Some(sup) => {
                    supervisor::supervise(&params, inputs, &mut lane_reports, &mut finals, sup)
                }
                None => RunHealth::passive(&lane_reports),
            };
            // Copy the final occupant of each lane slot's window back
            // into device memory, so `read_lane_bytes` sees the same
            // post-run state as running every wave on the device.
            for (slot, words) in finals {
                let origin = (slot * opts.banks_per_lane * BANK_WORDS) as u32;
                self.mem.load_words(origin, &words);
            }
            return Ok(Self::merge_report(lane_reports, lanes_cap, opts, health));
        }

        let mut lane_reports = Vec::with_capacity(inputs.len());
        let mut wall_cycles = 0u64;
        let mut total_conflict = 0u64;
        let mut chunk = 0usize;
        while chunk < inputs.len() {
            let wave = &inputs[chunk..(chunk + lanes_cap).min(inputs.len())];
            let mut wave_cycles = 0u64;
            let mut wave_bank_refs = [0u64; NUM_BANKS];
            for (i, input) in wave.iter().enumerate() {
                let origin = (i * opts.banks_per_lane * BANK_WORDS) as u32;
                self.mem.load_words(origin, &image.words);
                // Zero the data area above the code within the window.
                self.mem.clear_words(
                    origin + image.stats.span_words as u32,
                    window_words - image.stats.span_words,
                );
                for (off, bytes) in &staging.segments {
                    self.mem.load_bytes(origin * 4 + off, bytes);
                }
                let mut lane = Lane::with_decoded(image, origin, Arc::clone(&decoded));
                // The window was loaded fresh just above, so unless a
                // staging segment overwrote code words the lane may
                // serve fetches from the predecoded table directly.
                if staging_clears_code(staging, image.stats.span_words) {
                    lane.mark_code_clean();
                }
                for (r, v) in &staging.regs {
                    lane.preset_reg(*r, *v);
                }
                let mut stream = BitStream::new(input);
                let mut out = OutputSink::with_capacity(input.len());
                let before = self.mem.refs();
                let bank_before = *self.mem.bank_refs();
                let mut rep = lane.run(&mut self.mem, &mut stream, &mut out, &lane_cfg);
                rep.mem_refs -= before; // per-lane delta
                for (b, (after, before)) in self
                    .mem
                    .bank_refs()
                    .iter()
                    .zip(bank_before.iter())
                    .enumerate()
                {
                    wave_bank_refs[b] += after - before;
                }
                wave_cycles = wave_cycles.max(rep.cycles);
                lane_reports.push(rep);
            }
            // Bank-conflict model: under local addressing, windows are
            // disjoint so conflicts are zero. Under restricted/global,
            // banks referenced by multiple lanes serialize round-robin:
            // the slowest lane waits for its share of the shared-bank
            // service. We charge the wave with the excess of the busiest
            // shared bank over an even split.
            let conflict = if opts.addressing.allows_sharing() {
                conflict_stall_model(&wave_bank_refs, wave.len(), opts.banks_per_lane)
            } else {
                0
            };
            total_conflict += conflict;
            wall_cycles += wave_cycles + conflict;
            chunk += wave.len();
        }

        Ok(UdpRunReport {
            lanes_used: lanes_cap.min(inputs.len()),
            wall_cycles,
            conflict_stalls: total_conflict,
            bytes_in: lane_reports.iter().map(|r| r.bytes_consumed).sum(),
            mem_refs: lane_reports.iter().map(|r| r.mem_refs).sum(),
            addressing: opts.addressing,
            health: RunHealth::passive(&lane_reports),
            lanes: lane_reports,
        })
    }

    /// Builds the aggregate report from per-lane reports under local
    /// addressing, recomputing modeled time with the wave formula:
    /// chunks execute in waves of `lanes_cap` on the modeled device,
    /// each wave costs its slowest lane, and disjoint windows mean zero
    /// conflict stalls. This is what decouples host scheduling from
    /// modeled time — however the pool interleaved chunks across
    /// workers, the report depends only on the per-lane reports in
    /// chunk order.
    fn merge_report(
        lane_reports: Vec<LaneReport>,
        lanes_cap: usize,
        opts: &UdpRunOptions,
        health: RunHealth,
    ) -> UdpRunReport {
        let wall_cycles = lane_reports
            .chunks(lanes_cap.max(1))
            .map(|wave| wave.iter().map(|r| r.cycles).max().unwrap_or(0))
            .sum();
        UdpRunReport {
            lanes_used: lanes_cap.min(lane_reports.len()),
            wall_cycles,
            conflict_stalls: 0,
            bytes_in: lane_reports.iter().map(|r| r.bytes_consumed).sum(),
            mem_refs: lane_reports.iter().map(|r| r.mem_refs).sum(),
            addressing: opts.addressing,
            health,
            lanes: lane_reports,
        }
    }

    /// Reads back a window-relative byte range of lane `lane_idx`'s
    /// window after a run.
    pub fn read_lane_bytes(
        &self,
        lane_idx: usize,
        banks_per_lane: usize,
        offset: u32,
        len: usize,
    ) -> Vec<u8> {
        let origin = (lane_idx * banks_per_lane * BANK_WORDS) as u32;
        self.mem.dump_bytes(origin * 4 + offset, len)
    }

    /// The device memory (diagnostics).
    pub fn memory(&self) -> &LocalMemory {
        &self.mem
    }
}

impl Default for Udp {
    fn default() -> Self {
        Self::new()
    }
}

/// True when no staging segment lands inside the code span, i.e. the
/// freshly loaded window still matches the predecoded image and the
/// lane may take the pristine-code fetch fast path.
pub(crate) fn staging_clears_code(staging: &Staging, span_words: usize) -> bool {
    staging
        .segments
        .iter()
        .all(|(off, bytes)| bytes.is_empty() || *off as usize >= span_words * 4)
}

/// Excess references to over-subscribed banks beyond an even split —
/// the cycles the round-robin arbiter adds to the critical path.
fn conflict_stall_model(bank_refs: &[u64; NUM_BANKS], lanes: usize, banks_per_lane: usize) -> u64 {
    if lanes <= 1 {
        return 0;
    }
    // Banks inside a single lane's window see only that lane: no conflict.
    // With disjoint windows (the data-parallel layout used here) this is
    // all banks, so the model contributes zero — shared-window runs (e.g.
    // a shared dictionary bank) see a positive charge.
    let window_banks = banks_per_lane.max(1);
    let mut stall = 0u64;
    for (b, &refs) in bank_refs.iter().enumerate() {
        let owners = if b / window_banks < lanes { 1 } else { 0 };
        if owners == 0 && refs > 0 {
            // A bank outside every private window is shared by all lanes.
            stall = stall.max(refs - refs / lanes as u64);
        }
    }
    stall
}

/// A reusable membership set over small integer keys, for frontier
/// deduplication without per-symbol sorting. `advance()` starts a new
/// generation in O(1) — membership is "stamp equals current generation"
/// — so the backing vector is allocated once and never cleared on the
/// hot path.
struct SeenSet {
    stamp: Vec<u32>,
    generation: u32,
}

impl SeenSet {
    fn new() -> Self {
        SeenSet {
            stamp: Vec::new(),
            generation: 0,
        }
    }

    /// Starts a new (empty) generation.
    fn advance(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap (once per 2^32 generations): old stamps could
            // alias the new generation, so clear them for real.
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    /// Inserts `v` into the current generation; true if it was absent.
    fn insert(&mut self, v: u32) -> bool {
        let i = v as usize;
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
        }
        if self.stamp[i] == self.generation {
            false
        } else {
            self.stamp[i] = self.generation;
            true
        }
    }
}

/// Runs an NFA program in lockstep multi-activation mode on one lane.
///
/// The frontier of active states all dispatch on the same input symbol
/// each step (UAP-style NFA execution); epsilon forks activate several
/// targets. Cycle cost is one dispatch per active state per symbol,
/// which is what makes large NFAs slower but smaller than DFAs.
///
/// Predecodes the image first; callers that run the same image over
/// many inputs should predecode once and use [`run_nfa_decoded`].
pub fn run_nfa(image: &ProgramImage, input: &[u8], cfg: &LaneConfig) -> LaneReport {
    run_nfa_decoded(image, &image.predecode(), input, cfg)
}

/// [`run_nfa`] over a shared predecoded view of `image` (decode-once /
/// execute-many). Lookups are validated against the raw memory word, so
/// the modeled counters are identical to decoding on every dispatch;
/// frontier states dedup through a reusable generation-stamped set
/// instead of a per-symbol sort, which changes only the in-`reports`
/// ordering of simultaneous matches, never their multiset or any count.
pub fn run_nfa_decoded(
    image: &ProgramImage,
    decoded: &DecodedProgram,
    input: &[u8],
    cfg: &LaneConfig,
) -> LaneReport {
    assert!(image.executable);
    let words = (image.stats.span_words + 1024).max(8192);
    let mut mem = LocalMemory::with_words(words);
    mem.load_words(0, &image.words);

    let mut dispatches = 0u64;
    let mut fallback_misses = 0u64;
    let entry = image.entry_base;

    // Frontier of consuming-state bases. A Pass entry (initial epsilon
    // closure with several byte-states) is expanded before scanning.
    let mut frontier: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();
    let mut seen = SeenSet::new();
    let mut accepted = false;
    let mut reports: Vec<(u16, u32)> = Vec::new();
    let mut cycles = 0u64;
    let mut nfa = NfaCtx {
        mem: &mut mem,
        decoded,
        cycles: &mut cycles,
        reports: &mut reports,
        accepted: &mut accepted,
        seen: &mut seen,
    };
    if image.entry_kind == ExecKind::Pass {
        let seed = TransitionWord::new(
            FALLBACK_SIGNATURE,
            (entry & 0xFFF) as u16,
            ExecKind::Pass,
            udp_isa::AttachMode::Direct,
            0,
        );
        nfa.seen.advance();
        nfa.resolve_activation(&seed, 0, &mut frontier);
    } else {
        frontier.push(entry);
    }
    let mut status = LaneStatus::InputExhausted;
    let budget = cfg.budget_for(input.len());

    'outer: for (pos, &byte) in input.iter().enumerate() {
        let s = u32::from(byte);
        next.clear();
        nfa.seen.advance();
        for &base in &frontier {
            if *nfa.cycles >= budget {
                status = LaneStatus::Fault(FaultKind::CycleBudget { limit: budget });
                break 'outer;
            }
            *nfa.cycles += 1;
            dispatches += 1;
            let raw = nfa.mem.read_word(base + s);
            let hit = raw != 0 && nfa.transition(base + s, raw).signature() == byte;
            let taken = if hit {
                Some(nfa.transition(base + s, raw))
            } else {
                *nfa.cycles += 1;
                fallback_misses += 1;
                let fb_addr = base + udp_isa::FALLBACK_SLOT;
                let fb = nfa.mem.read_word(fb_addr);
                if fb == 0 {
                    None // this activation dies
                } else {
                    Some(nfa.transition(fb_addr, fb))
                }
            };
            let Some(t) = taken else { continue };
            nfa.resolve_activation(&t, pos as u32 + 1, &mut next);
        }
        std::mem::swap(&mut frontier, &mut next);
        if frontier.is_empty() {
            status = LaneStatus::NoTransition;
            break;
        }
    }

    LaneReport {
        status,
        cycles,
        dispatches,
        fallback_misses,
        actions: reports.len() as u64,
        mem_refs: mem.refs(),
        bytes_consumed: input.len() as u64,
        output: Vec::new(),
        reports,
        accepted,
        regs: [0; 16],
    }
}

/// The mutable machinery one NFA run threads through activation
/// resolution (bundled so the recursion has one argument instead of
/// six).
struct NfaCtx<'a> {
    mem: &'a mut LocalMemory,
    decoded: &'a DecodedProgram,
    cycles: &'a mut u64,
    reports: &'a mut Vec<(u16, u32)>,
    accepted: &'a mut bool,
    seen: &'a mut SeenSet,
}

impl NfaCtx<'_> {
    /// Transition view of the word at `addr` whose raw bits are `raw`:
    /// predecoded table when valid (NFA memory is never written after
    /// load, so this is the steady state), decode otherwise.
    fn transition(&self, addr: u32, raw: u32) -> TransitionWord {
        self.decoded
            .transition(addr as usize, raw)
            .unwrap_or_else(|| TransitionWord::decode(raw))
    }

    /// Follows a taken transition to consuming successors, expanding
    /// epsilon forks and running Report/Accept side effects (the only
    /// actions NFA programs attach). Successors dedup against the
    /// current `seen` generation at insertion.
    fn resolve_activation(&mut self, t: &TransitionWord, pos: u32, next: &mut Vec<u32>) {
        // Run attached Report/Accept actions.
        if let Some(addr) = t.action_addr(0, 0) {
            let flat = match t.attach_mode() {
                udp_isa::AttachMode::Direct => addr,
                udp_isa::AttachMode::Scaled => addr, // abase = 0 in NFA programs
            };
            for a in flat..flat.saturating_add(64) {
                let raw = self.mem.read_word(a);
                let Some(act) = self
                    .decoded
                    .action(a as usize, raw)
                    .unwrap_or_else(|| udp_isa::Action::decode(raw))
                else {
                    break;
                };
                *self.cycles += 1;
                match act.op {
                    udp_isa::Opcode::Report => self.reports.push((act.imm, pos)),
                    udp_isa::Opcode::Accept => *self.accepted = act.imm != 0,
                    _ => {}
                }
                if act.last {
                    break;
                }
            }
        }
        match t.kind() {
            ExecKind::Halt => {}
            ExecKind::Consume => {
                let tgt = u32::from(t.target());
                if self.seen.insert(tgt) {
                    next.push(tgt);
                }
            }
            ExecKind::Flagged => {}
            ExecKind::Pass => {
                // Expand the fork chain.
                let base = u32::from(t.target());
                let mut k = 0u32;
                loop {
                    *self.cycles += 1;
                    let addr = base + udp_isa::FALLBACK_SLOT + k;
                    let raw = self.mem.read_word(addr);
                    if raw == 0 {
                        break;
                    }
                    let w = self.transition(addr, raw);
                    self.resolve_activation(&w, pos, next);
                    if w.signature() != CHAIN_CONTINUE_SIGNATURE {
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use udp_asm::{Arc, LayoutOptions, ProgramBuilder, Target};
    use udp_isa::action::{Action, Opcode};

    fn emit(b: u8) -> Vec<Action> {
        vec![Action::imm(Opcode::EmitB, Reg::R0, Reg::R0, u16::from(b))]
    }

    fn scanner() -> ProgramImage {
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.labeled_arc(s, b'a' as u16, Target::State(s), emit(b'!'));
        b.fallback_arc(s, Target::State(s), vec![]);
        b.assemble(&LayoutOptions::default()).unwrap()
    }

    #[test]
    fn data_parallel_runs_every_chunk() {
        let img = scanner();
        let mut udp = Udp::new();
        let inputs: Vec<&[u8]> = vec![b"aa", b"ba", b"bb"];
        let rep = udp.run_data_parallel(
            &img,
            &inputs,
            &Staging::default(),
            &UdpRunOptions::default(),
        );
        assert_eq!(rep.lanes.len(), 3);
        assert_eq!(
            rep.concat_output(),
            b"aa!a!".iter().map(|_| b'!').take(3).collect::<Vec<_>>()
        );
        assert_eq!(rep.bytes_in, 6);
        // Wall cycles = slowest lane.
        let max = rep.lanes.iter().map(|l| l.cycles).max().unwrap();
        assert_eq!(rep.wall_cycles, max);
    }

    #[test]
    fn verify_preflight_accepts_clean_and_rejects_corrupt_images() {
        let img = scanner();
        let mut udp = Udp::new();
        let opts = UdpRunOptions {
            verify: true,
            ..UdpRunOptions::default()
        };
        let inputs: Vec<&[u8]> = vec![b"aa"];
        udp.try_run_data_parallel(&img, &inputs, &Staging::default(), &opts)
            .expect("clean image passes pre-flight");

        let mut broken = img.clone();
        let dup = broken.state_bases[0];
        broken.state_bases.push(dup);
        match udp.try_run_data_parallel(&broken, &inputs, &Staging::default(), &opts) {
            Err(SimError::Verify(report)) => assert!(report.errors() > 0),
            other => panic!("expected SimError::Verify, got {other:?}"),
        }
        // Without the flag the same image still loads (dynamic behavior
        // is the fault harness's business, not the loader's).
        udp.try_run_data_parallel(
            &broken,
            &inputs,
            &Staging::default(),
            &UdpRunOptions::default(),
        )
        .expect("pre-flight is opt-in");
    }

    #[test]
    fn more_chunks_than_lanes_run_in_waves() {
        let img = scanner();
        let mut udp = Udp::new();
        let chunk: &[u8] = b"aaaa";
        let inputs: Vec<&[u8]> = vec![chunk; 70]; // > 64 lanes
        let rep = udp.run_data_parallel(
            &img,
            &inputs,
            &Staging::default(),
            &UdpRunOptions::default(),
        );
        assert_eq!(rep.lanes.len(), 70);
        // Two waves: wall = 2 × single-chunk cycles.
        let one = rep.lanes[0].cycles;
        assert_eq!(rep.wall_cycles, 2 * one);
    }

    #[test]
    fn oversized_program_is_a_typed_error() {
        // Pack enough dense states that the image cannot fit one bank.
        let mut b = ProgramBuilder::new();
        let states: Vec<_> = (0..40).map(|_| b.add_consuming_state()).collect();
        b.set_entry(states[0]);
        for (i, &s) in states.iter().enumerate() {
            let next = states[(i + 1) % states.len()];
            for sym in 0..200u16 {
                b.labeled_arc(s, sym, Target::State(next), vec![]);
            }
            b.fallback_arc(s, Target::State(s), vec![]);
        }
        let img = b
            .assemble(&udp_asm::LayoutOptions::with_banks(64))
            .expect("fits the full memory");
        assert!(img.stats.span_words > BANK_WORDS);
        let mut udp = Udp::new();
        let inputs: Vec<&[u8]> = vec![b"aaa"];
        let err = udp
            .try_run_data_parallel(
                &img,
                &inputs,
                &Staging::default(),
                &UdpRunOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::ProgramTooLarge {
                banks_per_lane: 1,
                ..
            }
        ));
    }

    #[test]
    fn zero_banks_is_a_typed_error() {
        let img = scanner();
        let mut udp = Udp::new();
        let inputs: Vec<&[u8]> = vec![b"a"];
        let opts = UdpRunOptions {
            banks_per_lane: 0,
            ..Default::default()
        };
        let err = udp
            .try_run_data_parallel(&img, &inputs, &Staging::default(), &opts)
            .unwrap_err();
        assert_eq!(
            err,
            crate::error::SimError::BadBankSplit { banks_per_lane: 0 }
        );
    }

    #[test]
    fn panicking_lane_degrades_to_fault_and_siblings_survive() {
        // Lane 1's input is long enough to cross the chaos threshold;
        // lanes 0 and 2 finish well under it. The panic must surface as
        // a Fault report for lane 1 only.
        let img = scanner();
        let mut udp = Udp::new();
        let long: Vec<u8> = vec![b'a'; 200];
        let inputs: Vec<&[u8]> = vec![b"aa", &long, b"aaa"];
        let opts = UdpRunOptions {
            parallel: true,
            lane: LaneConfig {
                chaos_panic_at: Some(50),
                ..Default::default()
            },
            ..Default::default()
        };
        // Silence the default panic hook for the deliberate panic, then
        // restore it so unrelated test failures keep their messages.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let rep = udp.try_run_data_parallel(&img, &inputs, &Staging::default(), &opts);
        std::panic::set_hook(hook);
        let rep = rep.expect("pre-flight config is valid");
        assert_eq!(rep.lanes.len(), 3);
        assert_eq!(rep.lanes[0].status, LaneStatus::InputExhausted);
        assert_eq!(rep.lanes[0].output, b"!!");
        assert!(
            matches!(
                &rep.lanes[1].status,
                LaneStatus::Fault(FaultKind::HostPanic(m)) if m.contains("chaos")
            ),
            "lane 1 should carry the panic: {:?}",
            rep.lanes[1].status
        );
        assert_eq!(rep.lanes[2].status, LaneStatus::InputExhausted);
        assert_eq!(rep.lanes[2].output, b"!!!");
    }

    #[test]
    fn backend_names_parse_and_typos_are_typed_errors() {
        assert_eq!("interpreter".parse(), Ok(ExecBackend::Interpreter));
        assert_eq!("INTERP".parse(), Ok(ExecBackend::Interpreter));
        assert_eq!("reference".parse(), Ok(ExecBackend::Interpreter));
        assert_eq!("compiled".parse(), Ok(ExecBackend::Compiled));
        assert_eq!("Compiled".parse(), Ok(ExecBackend::Compiled));
        let err = "complied".parse::<ExecBackend>().unwrap_err();
        assert_eq!(err.value, "complied");
        assert!(err.to_string().contains("complied"));
        assert!(err.to_string().contains("compiled"));
        assert!("".parse::<ExecBackend>().is_err());
    }

    #[test]
    fn invalid_supervisor_options_are_rejected_preflight() {
        let img = scanner();
        let mut udp = Udp::new();
        let inputs: Vec<&[u8]> = vec![b"a"];
        let opts = UdpRunOptions {
            supervise: Some(SupervisorOptions {
                backoff_base_ms: 10,
                backoff_cap_ms: 2,
                ..SupervisorOptions::default()
            }),
            ..UdpRunOptions::default()
        };
        let err = udp
            .try_run_data_parallel(&img, &inputs, &Staging::default(), &opts)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::SupervisorConfig {
                backoff_base_ms: 10,
                backoff_cap_ms: 2,
            }
        );
    }

    #[test]
    fn multi_bank_windows_reduce_lane_count() {
        let img = scanner();
        assert_eq!(Udp::max_lanes(&img, 1), 64);
        assert_eq!(Udp::max_lanes(&img, 2), 32);
        assert_eq!(Udp::max_lanes(&img, 64), 1);
    }

    #[test]
    fn staging_lands_in_each_lane_window() {
        // Program reads staged byte at window offset 2048 and emits it.
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        let r1 = Reg::new(1);
        b.labeled_arc(
            s,
            b'.' as u16,
            Target::Halt,
            vec![
                Action::imm(Opcode::MovI, r1, Reg::R0, 2048),
                Action::imm(Opcode::LoadB, r1, r1, 0),
                Action::imm(Opcode::EmitB, Reg::R0, r1, 0),
            ],
        );
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        let mut udp = Udp::new();
        let staging = Staging {
            segments: vec![(2048, vec![b'S'])],
            regs: vec![],
        };
        let inputs: Vec<&[u8]> = vec![b".", b"."];
        let rep = udp.run_data_parallel(&img, &inputs, &staging, &UdpRunOptions::default());
        assert_eq!(rep.concat_output(), b"SS");
    }

    #[test]
    fn shared_bank_references_charge_conflict_stalls() {
        // Lanes that BumpW a location outside every private window model
        // a shared structure (e.g. a global statistics bank).
        let mut b = ProgramBuilder::new();
        let s = b.add_consuming_state();
        b.set_entry(s);
        b.fallback_arc(
            s,
            Target::State(s),
            vec![Action::imm(Opcode::BumpW, Reg::R0, Reg::new(12), 1024)],
        );
        let img = b.assemble(&LayoutOptions::default()).unwrap();
        let mut udp = Udp::new();
        let inputs: Vec<&[u8]> = vec![b"xxxxxxxx"; 4];
        let local = udp.run_data_parallel(
            &img,
            &inputs,
            &Staging::default(),
            &UdpRunOptions::default(),
        );
        assert_eq!(local.conflict_stalls, 0, "local windows are disjoint");
        // Under restricted addressing the model can charge stalls for
        // genuinely shared banks; with disjoint windows it stays zero.
        let mut udp = Udp::new();
        let restricted = udp.run_data_parallel(
            &img,
            &inputs,
            &Staging::default(),
            &UdpRunOptions {
                addressing: udp_isa::mem::AddressingMode::Restricted,
                ..Default::default()
            },
        );
        assert_eq!(restricted.lanes.len(), 4);
        assert!(restricted.wall_cycles >= local.wall_cycles);
    }

    #[test]
    fn throughput_accounts_for_all_lanes() {
        let img = scanner();
        let mut udp = Udp::new();
        let inputs: Vec<&[u8]> = vec![b"aaaaaaaaaaaaaaaa"; 8];
        let rep = udp.run_data_parallel(
            &img,
            &inputs,
            &Staging::default(),
            &UdpRunOptions::default(),
        );
        let lane_rate = rep.lanes[0].rate_mbps(1.0);
        let tput = rep.throughput_mbps(1.0);
        assert!(
            (tput / lane_rate - 8.0).abs() < 0.01,
            "{tput} vs {lane_rate}"
        );
    }

    #[test]
    fn nfa_mode_tracks_multiple_activations() {
        // Patterns "ab" and "ac" as an NFA with a fork after 'a'.
        // start --a--> fork{p1, p2}; p1 --b--> report 1; p2 --c--> report 2.
        let mut b = ProgramBuilder::new();
        let start = b.add_consuming_state();
        let p1 = b.add_consuming_state();
        let p2 = b.add_consuming_state();
        b.set_entry(start);
        let fork = b.add_fork_state(vec![
            Arc {
                target: Target::State(p1),
                actions: vec![],
            },
            Arc {
                target: Target::State(p2),
                actions: vec![],
            },
        ]);
        b.labeled_arc(start, b'a' as u16, Target::State(fork), vec![]);
        b.fallback_arc(start, Target::State(start), vec![]);
        // p1/p2 die on mismatch (no fallback) — but the start state keeps
        // scanning via the fork? No: real scanners fork the start state
        // too. Here we just check activation mechanics on exact input.
        b.labeled_arc(
            p1,
            b'b' as u16,
            Target::State(start),
            vec![Action::imm(Opcode::Report, Reg::R0, Reg::R0, 1)],
        );
        b.labeled_arc(
            p2,
            b'c' as u16,
            Target::State(start),
            vec![Action::imm(Opcode::Report, Reg::R0, Reg::R0, 2)],
        );
        let img = b.assemble(&LayoutOptions::default()).unwrap();

        let rep = run_nfa(&img, b"ab", &LaneConfig::default());
        assert_eq!(rep.reports, vec![(1, 2)]);

        let rep = run_nfa(&img, b"ac", &LaneConfig::default());
        assert_eq!(rep.reports, vec![(2, 2)]);

        // NFA cost: after 'a', two states are active on the second symbol.
        assert!(rep.dispatches >= 3);
    }
}
